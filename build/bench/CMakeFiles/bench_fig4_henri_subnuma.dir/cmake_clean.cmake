file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_henri_subnuma.dir/bench_fig4_henri_subnuma.cpp.o"
  "CMakeFiles/bench_fig4_henri_subnuma.dir/bench_fig4_henri_subnuma.cpp.o.d"
  "bench_fig4_henri_subnuma"
  "bench_fig4_henri_subnuma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_henri_subnuma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
