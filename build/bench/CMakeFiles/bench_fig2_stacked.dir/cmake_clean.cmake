file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_stacked.dir/bench_fig2_stacked.cpp.o"
  "CMakeFiles/bench_fig2_stacked.dir/bench_fig2_stacked.cpp.o.d"
  "bench_fig2_stacked"
  "bench_fig2_stacked.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_stacked.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
