
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig2_stacked.cpp" "bench/CMakeFiles/bench_fig2_stacked.dir/bench_fig2_stacked.cpp.o" "gcc" "bench/CMakeFiles/bench_fig2_stacked.dir/bench_fig2_stacked.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/mcm_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/mcm_model.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/mcm_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/benchlib/CMakeFiles/mcm_benchlib.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mcm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/mcm_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mcm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mcm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
