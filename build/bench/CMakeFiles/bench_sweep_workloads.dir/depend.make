# Empty dependencies file for bench_sweep_workloads.
# This may be replaced when dependencies are built.
