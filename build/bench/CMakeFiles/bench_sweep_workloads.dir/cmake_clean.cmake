file(REMOVE_RECURSE
  "CMakeFiles/bench_sweep_workloads.dir/bench_sweep_workloads.cpp.o"
  "CMakeFiles/bench_sweep_workloads.dir/bench_sweep_workloads.cpp.o.d"
  "bench_sweep_workloads"
  "bench_sweep_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sweep_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
