file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_pyxis.dir/bench_fig7_pyxis.cpp.o"
  "CMakeFiles/bench_fig7_pyxis.dir/bench_fig7_pyxis.cpp.o.d"
  "bench_fig7_pyxis"
  "bench_fig7_pyxis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_pyxis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
