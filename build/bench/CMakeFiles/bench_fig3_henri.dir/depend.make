# Empty dependencies file for bench_fig3_henri.
# This may be replaced when dependencies are built.
