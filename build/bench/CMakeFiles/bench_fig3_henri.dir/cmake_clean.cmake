file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_henri.dir/bench_fig3_henri.cpp.o"
  "CMakeFiles/bench_fig3_henri.dir/bench_fig3_henri.cpp.o.d"
  "bench_fig3_henri"
  "bench_fig3_henri.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_henri.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
