file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_dahu.dir/bench_fig8_dahu.cpp.o"
  "CMakeFiles/bench_fig8_dahu.dir/bench_fig8_dahu.cpp.o.d"
  "bench_fig8_dahu"
  "bench_fig8_dahu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_dahu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
