# Empty dependencies file for bench_fig8_dahu.
# This may be replaced when dependencies are built.
