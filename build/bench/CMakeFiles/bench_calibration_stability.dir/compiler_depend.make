# Empty compiler generated dependencies file for bench_calibration_stability.
# This may be replaced when dependencies are built.
