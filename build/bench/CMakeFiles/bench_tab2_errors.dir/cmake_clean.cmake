file(REMOVE_RECURSE
  "CMakeFiles/bench_tab2_errors.dir/bench_tab2_errors.cpp.o"
  "CMakeFiles/bench_tab2_errors.dir/bench_tab2_errors.cpp.o.d"
  "bench_tab2_errors"
  "bench_tab2_errors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab2_errors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
