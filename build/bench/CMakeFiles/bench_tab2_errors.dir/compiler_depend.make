# Empty compiler generated dependencies file for bench_tab2_errors.
# This may be replaced when dependencies are built.
