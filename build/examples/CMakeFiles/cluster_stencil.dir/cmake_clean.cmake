file(REMOVE_RECURSE
  "CMakeFiles/cluster_stencil.dir/cluster_stencil.cpp.o"
  "CMakeFiles/cluster_stencil.dir/cluster_stencil.cpp.o.d"
  "cluster_stencil"
  "cluster_stencil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_stencil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
