# Empty compiler generated dependencies file for cluster_stencil.
# This may be replaced when dependencies are built.
