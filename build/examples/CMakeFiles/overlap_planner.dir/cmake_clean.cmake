file(REMOVE_RECURSE
  "CMakeFiles/overlap_planner.dir/overlap_planner.cpp.o"
  "CMakeFiles/overlap_planner.dir/overlap_planner.cpp.o.d"
  "overlap_planner"
  "overlap_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overlap_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
