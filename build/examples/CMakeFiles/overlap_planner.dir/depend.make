# Empty dependencies file for overlap_planner.
# This may be replaced when dependencies are built.
