file(REMOVE_RECURSE
  "libmcm_util.a"
)
