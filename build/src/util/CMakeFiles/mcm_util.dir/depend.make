# Empty dependencies file for mcm_util.
# This may be replaced when dependencies are built.
