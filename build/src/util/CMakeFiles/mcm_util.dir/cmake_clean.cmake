file(REMOVE_RECURSE
  "CMakeFiles/mcm_util.dir/csv.cpp.o"
  "CMakeFiles/mcm_util.dir/csv.cpp.o.d"
  "CMakeFiles/mcm_util.dir/rng.cpp.o"
  "CMakeFiles/mcm_util.dir/rng.cpp.o.d"
  "CMakeFiles/mcm_util.dir/stats.cpp.o"
  "CMakeFiles/mcm_util.dir/stats.cpp.o.d"
  "CMakeFiles/mcm_util.dir/strings.cpp.o"
  "CMakeFiles/mcm_util.dir/strings.cpp.o.d"
  "CMakeFiles/mcm_util.dir/table.cpp.o"
  "CMakeFiles/mcm_util.dir/table.cpp.o.d"
  "libmcm_util.a"
  "libmcm_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcm_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
