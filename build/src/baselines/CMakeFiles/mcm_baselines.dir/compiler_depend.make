# Empty compiler generated dependencies file for mcm_baselines.
# This may be replaced when dependencies are built.
