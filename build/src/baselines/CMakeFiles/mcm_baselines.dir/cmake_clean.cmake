file(REMOVE_RECURSE
  "CMakeFiles/mcm_baselines.dir/baselines.cpp.o"
  "CMakeFiles/mcm_baselines.dir/baselines.cpp.o.d"
  "libmcm_baselines.a"
  "libmcm_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcm_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
