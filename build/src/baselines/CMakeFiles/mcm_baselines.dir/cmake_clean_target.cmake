file(REMOVE_RECURSE
  "libmcm_baselines.a"
)
