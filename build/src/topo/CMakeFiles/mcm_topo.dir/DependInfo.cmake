
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topo/builder.cpp" "src/topo/CMakeFiles/mcm_topo.dir/builder.cpp.o" "gcc" "src/topo/CMakeFiles/mcm_topo.dir/builder.cpp.o.d"
  "/root/repo/src/topo/distance.cpp" "src/topo/CMakeFiles/mcm_topo.dir/distance.cpp.o" "gcc" "src/topo/CMakeFiles/mcm_topo.dir/distance.cpp.o.d"
  "/root/repo/src/topo/platforms.cpp" "src/topo/CMakeFiles/mcm_topo.dir/platforms.cpp.o" "gcc" "src/topo/CMakeFiles/mcm_topo.dir/platforms.cpp.o.d"
  "/root/repo/src/topo/render.cpp" "src/topo/CMakeFiles/mcm_topo.dir/render.cpp.o" "gcc" "src/topo/CMakeFiles/mcm_topo.dir/render.cpp.o.d"
  "/root/repo/src/topo/topology.cpp" "src/topo/CMakeFiles/mcm_topo.dir/topology.cpp.o" "gcc" "src/topo/CMakeFiles/mcm_topo.dir/topology.cpp.o.d"
  "/root/repo/src/topo/topology_io.cpp" "src/topo/CMakeFiles/mcm_topo.dir/topology_io.cpp.o" "gcc" "src/topo/CMakeFiles/mcm_topo.dir/topology_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mcm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
