file(REMOVE_RECURSE
  "libmcm_topo.a"
)
