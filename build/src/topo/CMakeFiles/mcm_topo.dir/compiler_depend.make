# Empty compiler generated dependencies file for mcm_topo.
# This may be replaced when dependencies are built.
