file(REMOVE_RECURSE
  "CMakeFiles/mcm_topo.dir/builder.cpp.o"
  "CMakeFiles/mcm_topo.dir/builder.cpp.o.d"
  "CMakeFiles/mcm_topo.dir/distance.cpp.o"
  "CMakeFiles/mcm_topo.dir/distance.cpp.o.d"
  "CMakeFiles/mcm_topo.dir/platforms.cpp.o"
  "CMakeFiles/mcm_topo.dir/platforms.cpp.o.d"
  "CMakeFiles/mcm_topo.dir/render.cpp.o"
  "CMakeFiles/mcm_topo.dir/render.cpp.o.d"
  "CMakeFiles/mcm_topo.dir/topology.cpp.o"
  "CMakeFiles/mcm_topo.dir/topology.cpp.o.d"
  "CMakeFiles/mcm_topo.dir/topology_io.cpp.o"
  "CMakeFiles/mcm_topo.dir/topology_io.cpp.o.d"
  "libmcm_topo.a"
  "libmcm_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcm_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
