file(REMOVE_RECURSE
  "CMakeFiles/mcm_net.dir/minimpi.cpp.o"
  "CMakeFiles/mcm_net.dir/minimpi.cpp.o.d"
  "CMakeFiles/mcm_net.dir/protocol.cpp.o"
  "CMakeFiles/mcm_net.dir/protocol.cpp.o.d"
  "CMakeFiles/mcm_net.dir/sim_channel.cpp.o"
  "CMakeFiles/mcm_net.dir/sim_channel.cpp.o.d"
  "libmcm_net.a"
  "libmcm_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcm_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
