# Empty compiler generated dependencies file for mcm_net.
# This may be replaced when dependencies are built.
