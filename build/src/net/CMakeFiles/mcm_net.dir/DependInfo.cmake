
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/minimpi.cpp" "src/net/CMakeFiles/mcm_net.dir/minimpi.cpp.o" "gcc" "src/net/CMakeFiles/mcm_net.dir/minimpi.cpp.o.d"
  "/root/repo/src/net/protocol.cpp" "src/net/CMakeFiles/mcm_net.dir/protocol.cpp.o" "gcc" "src/net/CMakeFiles/mcm_net.dir/protocol.cpp.o.d"
  "/root/repo/src/net/sim_channel.cpp" "src/net/CMakeFiles/mcm_net.dir/sim_channel.cpp.o" "gcc" "src/net/CMakeFiles/mcm_net.dir/sim_channel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mcm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mcm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/mcm_topo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
