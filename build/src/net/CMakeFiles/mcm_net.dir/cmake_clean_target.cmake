file(REMOVE_RECURSE
  "libmcm_net.a"
)
