file(REMOVE_RECURSE
  "libmcm_runtime.a"
)
