
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/affinity.cpp" "src/runtime/CMakeFiles/mcm_runtime.dir/affinity.cpp.o" "gcc" "src/runtime/CMakeFiles/mcm_runtime.dir/affinity.cpp.o.d"
  "/root/repo/src/runtime/kernels.cpp" "src/runtime/CMakeFiles/mcm_runtime.dir/kernels.cpp.o" "gcc" "src/runtime/CMakeFiles/mcm_runtime.dir/kernels.cpp.o.d"
  "/root/repo/src/runtime/native_backend.cpp" "src/runtime/CMakeFiles/mcm_runtime.dir/native_backend.cpp.o" "gcc" "src/runtime/CMakeFiles/mcm_runtime.dir/native_backend.cpp.o.d"
  "/root/repo/src/runtime/thread_pool.cpp" "src/runtime/CMakeFiles/mcm_runtime.dir/thread_pool.cpp.o" "gcc" "src/runtime/CMakeFiles/mcm_runtime.dir/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/benchlib/CMakeFiles/mcm_benchlib.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mcm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mcm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mcm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/mcm_topo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
