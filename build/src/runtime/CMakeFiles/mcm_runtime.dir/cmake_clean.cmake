file(REMOVE_RECURSE
  "CMakeFiles/mcm_runtime.dir/affinity.cpp.o"
  "CMakeFiles/mcm_runtime.dir/affinity.cpp.o.d"
  "CMakeFiles/mcm_runtime.dir/kernels.cpp.o"
  "CMakeFiles/mcm_runtime.dir/kernels.cpp.o.d"
  "CMakeFiles/mcm_runtime.dir/native_backend.cpp.o"
  "CMakeFiles/mcm_runtime.dir/native_backend.cpp.o.d"
  "CMakeFiles/mcm_runtime.dir/thread_pool.cpp.o"
  "CMakeFiles/mcm_runtime.dir/thread_pool.cpp.o.d"
  "libmcm_runtime.a"
  "libmcm_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcm_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
