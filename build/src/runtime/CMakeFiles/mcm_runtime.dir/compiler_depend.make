# Empty compiler generated dependencies file for mcm_runtime.
# This may be replaced when dependencies are built.
