file(REMOVE_RECURSE
  "CMakeFiles/mcm_benchlib.dir/curves.cpp.o"
  "CMakeFiles/mcm_benchlib.dir/curves.cpp.o.d"
  "CMakeFiles/mcm_benchlib.dir/runner.cpp.o"
  "CMakeFiles/mcm_benchlib.dir/runner.cpp.o.d"
  "CMakeFiles/mcm_benchlib.dir/sweep_io.cpp.o"
  "CMakeFiles/mcm_benchlib.dir/sweep_io.cpp.o.d"
  "libmcm_benchlib.a"
  "libmcm_benchlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcm_benchlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
