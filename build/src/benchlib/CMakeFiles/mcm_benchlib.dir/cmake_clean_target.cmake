file(REMOVE_RECURSE
  "libmcm_benchlib.a"
)
