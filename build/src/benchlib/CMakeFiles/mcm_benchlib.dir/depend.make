# Empty dependencies file for mcm_benchlib.
# This may be replaced when dependencies are built.
