
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/benchlib/curves.cpp" "src/benchlib/CMakeFiles/mcm_benchlib.dir/curves.cpp.o" "gcc" "src/benchlib/CMakeFiles/mcm_benchlib.dir/curves.cpp.o.d"
  "/root/repo/src/benchlib/runner.cpp" "src/benchlib/CMakeFiles/mcm_benchlib.dir/runner.cpp.o" "gcc" "src/benchlib/CMakeFiles/mcm_benchlib.dir/runner.cpp.o.d"
  "/root/repo/src/benchlib/sweep_io.cpp" "src/benchlib/CMakeFiles/mcm_benchlib.dir/sweep_io.cpp.o" "gcc" "src/benchlib/CMakeFiles/mcm_benchlib.dir/sweep_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mcm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/mcm_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mcm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
