# Empty dependencies file for mcm_model.
# This may be replaced when dependencies are built.
