
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/calibration.cpp" "src/model/CMakeFiles/mcm_model.dir/calibration.cpp.o" "gcc" "src/model/CMakeFiles/mcm_model.dir/calibration.cpp.o.d"
  "/root/repo/src/model/metrics.cpp" "src/model/CMakeFiles/mcm_model.dir/metrics.cpp.o" "gcc" "src/model/CMakeFiles/mcm_model.dir/metrics.cpp.o.d"
  "/root/repo/src/model/model.cpp" "src/model/CMakeFiles/mcm_model.dir/model.cpp.o" "gcc" "src/model/CMakeFiles/mcm_model.dir/model.cpp.o.d"
  "/root/repo/src/model/overlap.cpp" "src/model/CMakeFiles/mcm_model.dir/overlap.cpp.o" "gcc" "src/model/CMakeFiles/mcm_model.dir/overlap.cpp.o.d"
  "/root/repo/src/model/parameters.cpp" "src/model/CMakeFiles/mcm_model.dir/parameters.cpp.o" "gcc" "src/model/CMakeFiles/mcm_model.dir/parameters.cpp.o.d"
  "/root/repo/src/model/placement.cpp" "src/model/CMakeFiles/mcm_model.dir/placement.cpp.o" "gcc" "src/model/CMakeFiles/mcm_model.dir/placement.cpp.o.d"
  "/root/repo/src/model/prediction.cpp" "src/model/CMakeFiles/mcm_model.dir/prediction.cpp.o" "gcc" "src/model/CMakeFiles/mcm_model.dir/prediction.cpp.o.d"
  "/root/repo/src/model/report.cpp" "src/model/CMakeFiles/mcm_model.dir/report.cpp.o" "gcc" "src/model/CMakeFiles/mcm_model.dir/report.cpp.o.d"
  "/root/repo/src/model/stability.cpp" "src/model/CMakeFiles/mcm_model.dir/stability.cpp.o" "gcc" "src/model/CMakeFiles/mcm_model.dir/stability.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/benchlib/CMakeFiles/mcm_benchlib.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/mcm_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mcm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mcm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
