file(REMOVE_RECURSE
  "CMakeFiles/mcm_model.dir/calibration.cpp.o"
  "CMakeFiles/mcm_model.dir/calibration.cpp.o.d"
  "CMakeFiles/mcm_model.dir/metrics.cpp.o"
  "CMakeFiles/mcm_model.dir/metrics.cpp.o.d"
  "CMakeFiles/mcm_model.dir/model.cpp.o"
  "CMakeFiles/mcm_model.dir/model.cpp.o.d"
  "CMakeFiles/mcm_model.dir/overlap.cpp.o"
  "CMakeFiles/mcm_model.dir/overlap.cpp.o.d"
  "CMakeFiles/mcm_model.dir/parameters.cpp.o"
  "CMakeFiles/mcm_model.dir/parameters.cpp.o.d"
  "CMakeFiles/mcm_model.dir/placement.cpp.o"
  "CMakeFiles/mcm_model.dir/placement.cpp.o.d"
  "CMakeFiles/mcm_model.dir/prediction.cpp.o"
  "CMakeFiles/mcm_model.dir/prediction.cpp.o.d"
  "CMakeFiles/mcm_model.dir/report.cpp.o"
  "CMakeFiles/mcm_model.dir/report.cpp.o.d"
  "CMakeFiles/mcm_model.dir/stability.cpp.o"
  "CMakeFiles/mcm_model.dir/stability.cpp.o.d"
  "libmcm_model.a"
  "libmcm_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcm_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
