file(REMOVE_RECURSE
  "libmcm_model.a"
)
