file(REMOVE_RECURSE
  "CMakeFiles/mcm_sim.dir/arbiter.cpp.o"
  "CMakeFiles/mcm_sim.dir/arbiter.cpp.o.d"
  "CMakeFiles/mcm_sim.dir/engine.cpp.o"
  "CMakeFiles/mcm_sim.dir/engine.cpp.o.d"
  "CMakeFiles/mcm_sim.dir/machine.cpp.o"
  "CMakeFiles/mcm_sim.dir/machine.cpp.o.d"
  "libmcm_sim.a"
  "libmcm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
