# Empty compiler generated dependencies file for mcm_sim.
# This may be replaced when dependencies are built.
