file(REMOVE_RECURSE
  "libmcm_sim.a"
)
