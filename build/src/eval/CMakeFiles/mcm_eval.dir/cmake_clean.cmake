file(REMOVE_RECURSE
  "CMakeFiles/mcm_eval.dir/ablation.cpp.o"
  "CMakeFiles/mcm_eval.dir/ablation.cpp.o.d"
  "CMakeFiles/mcm_eval.dir/experiments.cpp.o"
  "CMakeFiles/mcm_eval.dir/experiments.cpp.o.d"
  "CMakeFiles/mcm_eval.dir/figures.cpp.o"
  "CMakeFiles/mcm_eval.dir/figures.cpp.o.d"
  "CMakeFiles/mcm_eval.dir/tables.cpp.o"
  "CMakeFiles/mcm_eval.dir/tables.cpp.o.d"
  "libmcm_eval.a"
  "libmcm_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcm_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
