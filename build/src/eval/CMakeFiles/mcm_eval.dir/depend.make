# Empty dependencies file for mcm_eval.
# This may be replaced when dependencies are built.
