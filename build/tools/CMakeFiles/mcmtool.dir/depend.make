# Empty dependencies file for mcmtool.
# This may be replaced when dependencies are built.
