file(REMOVE_RECURSE
  "CMakeFiles/mcmtool.dir/mcmtool.cpp.o"
  "CMakeFiles/mcmtool.dir/mcmtool.cpp.o.d"
  "mcmtool"
  "mcmtool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcmtool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
