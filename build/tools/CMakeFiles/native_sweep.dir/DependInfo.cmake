
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/native_sweep.cpp" "tools/CMakeFiles/native_sweep.dir/native_sweep.cpp.o" "gcc" "tools/CMakeFiles/native_sweep.dir/native_sweep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/mcm_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/benchlib/CMakeFiles/mcm_benchlib.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mcm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mcm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mcm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/mcm_topo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
