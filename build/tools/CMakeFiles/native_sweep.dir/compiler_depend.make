# Empty compiler generated dependencies file for native_sweep.
# This may be replaced when dependencies are built.
