file(REMOVE_RECURSE
  "CMakeFiles/native_sweep.dir/native_sweep.cpp.o"
  "CMakeFiles/native_sweep.dir/native_sweep.cpp.o.d"
  "native_sweep"
  "native_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/native_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
