#include "runtime/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/contracts.hpp"

namespace mcm::runtime {
namespace {

TEST(ThreadPool, RunsTaskOnEveryWorkerExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(4);
  pool.run_on_all([&](std::size_t worker) { hits[worker].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, WorkerIndicesAreDistinct) {
  ThreadPool pool(3);
  std::mutex mutex;
  std::set<std::size_t> seen;
  pool.run_on_all([&](std::size_t worker) {
    std::lock_guard lock(mutex);
    seen.insert(worker);
  });
  EXPECT_EQ(seen, (std::set<std::size_t>{0, 1, 2}));
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(101);
  pool.parallel_for(0, 101, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForWithOffsetRange) {
  ThreadPool pool(2);
  std::atomic<long> sum{0};
  pool.parallel_for(10, 20, [&](std::size_t i) {
    sum.fetch_add(static_cast<long>(i));
  });
  EXPECT_EQ(sum.load(), 145);  // 10 + ... + 19
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.parallel_for(5, 5, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, SequentialInvocationsReuseWorkers) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.run_on_all([&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 100);
}

TEST(ThreadPool, MoreWorkersThanWork) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(0, 3, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SingleWorkerPool) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<int> value{0};
  pool.parallel_for(0, 10, [&](std::size_t) { value.fetch_add(1); });
  EXPECT_EQ(value.load(), 10);
}

TEST(ThreadPool, RejectsZeroWorkers) {
  EXPECT_THROW(ThreadPool pool(0), ContractViolation);
}

TEST(ThreadPool, ThrowingTaskRethrowsOnDispatcher) {
  // Regression: a throwing task used to escape the worker thread, which
  // calls std::terminate and — had it survived — would have leaked
  // remaining_ and deadlocked the destructor.
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.run_on_all([&](std::size_t worker) {
        if (worker == 2) throw std::runtime_error("boom");
        completed.fetch_add(1);
      }),
      std::runtime_error);
  EXPECT_EQ(completed.load(), 3);  // the other workers still ran
}

TEST(ThreadPool, PoolIsUsableAfterThrowingTask) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.run_on_all([](std::size_t) { throw std::runtime_error("x"); }),
      std::runtime_error);
  std::atomic<int> value{0};
  pool.run_on_all([&](std::size_t) { value.fetch_add(1); });
  EXPECT_EQ(value.load(), 2);
}

TEST(ThreadPool, ParallelForPropagatesBodyException) {
  ThreadPool pool(3);
  std::string message;
  try {
    pool.parallel_for(0, 30, [](std::size_t i) {
      if (i == 17) throw std::runtime_error("index 17");
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& error) {
    message = error.what();
  }
  EXPECT_EQ(message, "index 17");
}

TEST(ThreadPool, DestructorSurvivesAfterThrowingTask) {
  auto pool = std::make_unique<ThreadPool>(2);
  EXPECT_THROW(
      pool->run_on_all([](std::size_t) { throw std::runtime_error("x"); }),
      std::runtime_error);
  pool.reset();  // must join, not deadlock
  SUCCEED();
}

TEST(ThreadPool, PinnedPoolStillRuns) {
  ThreadPool pool(2, /*pin_to_cpus=*/true);
  std::atomic<int> value{0};
  pool.run_on_all([&](std::size_t) { value.fetch_add(1); });
  EXPECT_EQ(value.load(), 2);
}

}  // namespace
}  // namespace mcm::runtime
