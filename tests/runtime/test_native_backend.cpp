#include "runtime/native_backend.hpp"

#include <gtest/gtest.h>

#include "benchlib/runner.hpp"
#include "util/contracts.hpp"

namespace mcm::runtime {
namespace {

NativeConfig small_config() {
  NativeConfig config;
  config.compute_cores = 2;
  config.working_set_bytes = 1 * kMiB;
  config.message_bytes = 1 * kMiB;
  config.comm_rounds = 2;
  config.fill_repetitions = 1;
  return config;
}

TEST(NativeBackend, ReportsConfiguredShape) {
  NativeBackend backend(small_config());
  EXPECT_EQ(backend.max_computing_cores(), 2u);
  EXPECT_EQ(backend.numa_count(), 1u);
  EXPECT_EQ(backend.numa_per_socket(), 1u);
  EXPECT_EQ(backend.name(), "native");
}

TEST(NativeBackend, ComputeAloneYieldsPositiveBandwidth) {
  NativeBackend backend(small_config());
  const Bandwidth one = backend.compute_alone(1, topo::NumaId(0));
  const Bandwidth two = backend.compute_alone(2, topo::NumaId(0));
  EXPECT_GT(one.gb(), 0.0);
  EXPECT_GT(two.gb(), 0.0);
}

TEST(NativeBackend, CommAloneYieldsPositiveBandwidth) {
  NativeBackend backend(small_config());
  EXPECT_GT(backend.comm_alone(topo::NumaId(0)).gb(), 0.0);
}

TEST(NativeBackend, ParallelMeasuresBothStreams) {
  NativeBackend backend(small_config());
  const sim::ParallelMeasurement result =
      backend.parallel(1, topo::NumaId(0), topo::NumaId(0));
  EXPECT_GT(result.compute.gb(), 0.0);
  EXPECT_GT(result.comm.gb(), 0.0);
}

TEST(NativeBackend, WorksThroughTheSweepRunner) {
  NativeBackend backend(small_config());
  bench::SweepOptions options;
  options.max_cores = 2;
  const bench::PlacementCurve curve = bench::run_placement(
      backend, topo::NumaId(0), topo::NumaId(0), options);
  ASSERT_EQ(curve.points.size(), 2u);
  for (const bench::BandwidthPoint& p : curve.points) {
    EXPECT_GT(p.compute_alone_gb, 0.0);
    EXPECT_GT(p.comm_parallel_gb, 0.0);
  }
}

TEST(NativeBackend, ValidatesArguments) {
  NativeBackend backend(small_config());
  EXPECT_THROW((void)backend.compute_alone(0, topo::NumaId(0)),
               ContractViolation);
  EXPECT_THROW((void)backend.compute_alone(3, topo::NumaId(0)),
               ContractViolation);
  EXPECT_THROW((void)backend.comm_alone(topo::NumaId(1)),
               ContractViolation);
  NativeConfig bad = small_config();
  bad.numa_per_socket = 2;  // > numa_count
  EXPECT_THROW(NativeBackend rejected(bad), ContractViolation);
}

TEST(NativeBackend, DefaultConfigResolvesCores) {
  NativeConfig config;
  config.working_set_bytes = kMiB;
  config.message_bytes = kMiB;
  config.comm_rounds = 1;
  config.fill_repetitions = 1;
  NativeBackend backend(config);
  EXPECT_GE(backend.max_computing_cores(), 1u);
}

}  // namespace
}  // namespace mcm::runtime
