#include "runtime/kernels.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/contracts.hpp"

namespace mcm::runtime {
namespace {

TEST(Kernels, FillWritesEveryByte) {
  std::vector<std::byte> buffer(4096 + 7);  // odd size: head/tail paths
  nt_fill(buffer, std::byte{0xab});
  for (std::size_t i = 0; i < buffer.size(); ++i) {
    ASSERT_EQ(buffer[i], std::byte{0xab}) << "offset " << i;
  }
}

TEST(Kernels, FillHandlesUnalignedStart) {
  std::vector<std::byte> backing(256, std::byte{0});
  // Slice starting at an odd offset.
  const std::span<std::byte> slice(backing.data() + 3, 200);
  nt_fill(slice, std::byte{0x11});
  EXPECT_EQ(backing[2], std::byte{0});    // untouched before
  EXPECT_EQ(backing[3], std::byte{0x11});
  EXPECT_EQ(backing[202], std::byte{0x11});
  EXPECT_EQ(backing[203], std::byte{0});  // untouched after
}

TEST(Kernels, FillEmptyBufferIsNoop) {
  std::vector<std::byte> buffer;
  EXPECT_NO_THROW(nt_fill(buffer, std::byte{1}));
}

TEST(Kernels, CopyReproducesSource) {
  std::vector<std::byte> src(10'000);
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<std::byte>(i * 7);
  }
  std::vector<std::byte> dst(src.size(), std::byte{0});
  nt_copy(dst, src);
  EXPECT_EQ(dst, src);
}

TEST(Kernels, CopyWithMisalignedDestination) {
  std::vector<std::byte> src(128);
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<std::byte>(i);
  }
  std::vector<std::byte> backing(256, std::byte{0xff});
  const std::span<std::byte> dst(backing.data() + 5, 128);
  nt_copy(dst, src);
  for (std::size_t i = 0; i < 128; ++i) {
    ASSERT_EQ(dst[i], src[i]) << i;
  }
  // Bytes bracketing the destination window stay untouched.
  EXPECT_EQ(backing[4], std::byte{0xff});
  EXPECT_EQ(backing[133], std::byte{0xff});
}

TEST(Kernels, CopyRejectsSizeMismatch) {
  std::vector<std::byte> src(8);
  std::vector<std::byte> dst(9);
  EXPECT_THROW(nt_copy(dst, src), ContractViolation);
}

TEST(Kernels, StreamingStoresAvailableOnX86) {
#if defined(__x86_64__)
  EXPECT_TRUE(has_streaming_stores());
#else
  SUCCEED();
#endif
}

TEST(Kernels, TimedFillReportsPlausibleBandwidth) {
  std::vector<std::byte> buffer(4 * kMiB);
  const Bandwidth bw = timed_fill(buffer, std::byte{0x42}, 3);
  // Anything between 100 MB/s and 1 TB/s is plausible across CI machines;
  // the point is that it is positive and finite.
  EXPECT_GT(bw.gb(), 0.1);
  EXPECT_LT(bw.gb(), 1000.0);
}

TEST(Kernels, TimedFillValidatesArguments) {
  std::vector<std::byte> buffer(16);
  EXPECT_THROW((void)timed_fill(buffer, std::byte{0}, 0),
               ContractViolation);
  std::vector<std::byte> empty;
  EXPECT_THROW((void)timed_fill(empty, std::byte{0}, 1),
               ContractViolation);
}

}  // namespace
}  // namespace mcm::runtime
