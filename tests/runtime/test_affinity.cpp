#include "runtime/affinity.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace mcm::runtime {
namespace {

TEST(Affinity, HardwareConcurrencyIsPositive) {
  EXPECT_GE(hardware_concurrency(), 1u);
}

TEST(Affinity, BindToCpuZeroSucceedsAndSticks) {
  // CPU 0 always exists. Run in a scratch thread so the test runner's own
  // thread keeps its affinity.
  std::thread t([] {
    const bool bound = bind_current_thread_to_cpu(0);
    EXPECT_TRUE(bound);
    if (bound) {
      const auto cpu = current_cpu();
      ASSERT_TRUE(cpu.has_value());
      EXPECT_EQ(*cpu, 0u);
    }
  });
  t.join();
}

TEST(Affinity, BindToAbsurdCpuFails) {
  std::thread t([] {
    EXPECT_FALSE(bind_current_thread_to_cpu(100'000));
  });
  t.join();
}

TEST(Affinity, CurrentCpuIsWithinRangeWhenKnown) {
  const auto cpu = current_cpu();
  if (cpu.has_value()) {
    EXPECT_LT(*cpu, 4096u);
  }
}

}  // namespace
}  // namespace mcm::runtime
