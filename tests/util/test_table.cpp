#include "util/table.hpp"

#include <gtest/gtest.h>

#include "util/contracts.hpp"

namespace mcm {
namespace {

TEST(AsciiTable, RendersHeaderAndRows) {
  AsciiTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos) << out;
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos) << out;
  EXPECT_NE(out.find("| beta  | 22    |"), std::string::npos) << out;
}

TEST(AsciiTable, ColumnsWidenToLongestCell) {
  AsciiTable t({"x"});
  t.add_row({"longer-cell"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| longer-cell |"), std::string::npos) << out;
}

TEST(AsciiTable, RightAlignment) {
  AsciiTable t({"n", "bw"});
  t.set_alignments({Align::kLeft, Align::kRight});
  t.add_row({"1", "5.5"});
  t.add_row({"10", "55.0"});
  const std::string out = t.render();
  EXPECT_NE(out.find("|  5.5 |"), std::string::npos) << out;
  EXPECT_NE(out.find("| 55.0 |"), std::string::npos) << out;
}

TEST(AsciiTable, SeparatorInsertedBetweenGroups) {
  AsciiTable t({"a"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  const std::string out = t.render();
  // Four rules: top, under header, the separator, bottom.
  std::size_t rules = 0;
  std::size_t pos = 0;
  while ((pos = out.find("+---", pos)) != std::string::npos) {
    ++rules;
    pos += 1;
  }
  EXPECT_EQ(rules, 4u) << out;
}

TEST(AsciiTable, RejectsMismatchedRow) {
  AsciiTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
}

TEST(AsciiTable, RowCount) {
  AsciiTable t({"a"});
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"1"});
  EXPECT_EQ(t.row_count(), 1u);
}

}  // namespace
}  // namespace mcm
