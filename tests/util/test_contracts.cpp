#include "util/contracts.hpp"

#include <gtest/gtest.h>

namespace mcm {
namespace {

TEST(Contracts, ExpectsPassesOnTrueCondition) {
  EXPECT_NO_THROW(MCM_EXPECTS(1 + 1 == 2));
}

TEST(Contracts, ExpectsThrowsContractViolation) {
  EXPECT_THROW(MCM_EXPECTS(false), ContractViolation);
}

TEST(Contracts, EnsuresThrowsContractViolation) {
  EXPECT_THROW(MCM_ENSURES(false), ContractViolation);
}

TEST(Contracts, MessageNamesKindExpressionAndLocation) {
  try {
    MCM_EXPECTS(2 < 1);
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& violation) {
    const std::string what = violation.what();
    EXPECT_NE(what.find("precondition"), std::string::npos) << what;
    EXPECT_NE(what.find("2 < 1"), std::string::npos) << what;
    EXPECT_NE(what.find("test_contracts.cpp"), std::string::npos) << what;
  }
}

TEST(Contracts, ViolationIsALogicError) {
  EXPECT_THROW(MCM_EXPECTS(false), std::logic_error);
}

}  // namespace
}  // namespace mcm
