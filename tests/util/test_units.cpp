#include "util/units.hpp"

#include <gtest/gtest.h>

namespace mcm {
namespace {

TEST(Units, BandwidthRoundTripsGbPerS) {
  const Bandwidth bw = Bandwidth::gb_per_s(12.5);
  EXPECT_DOUBLE_EQ(bw.gb(), 12.5);
  EXPECT_DOUBLE_EQ(bw.bps(), 12.5e9);
}

TEST(Units, BandwidthArithmetic) {
  const Bandwidth a = Bandwidth::gb_per_s(10.0);
  const Bandwidth b = Bandwidth::gb_per_s(4.0);
  EXPECT_DOUBLE_EQ((a + b).gb(), 14.0);
  EXPECT_DOUBLE_EQ((a - b).gb(), 6.0);
  EXPECT_DOUBLE_EQ((a * 0.5).gb(), 5.0);
  EXPECT_DOUBLE_EQ((2.0 * b).gb(), 8.0);
  EXPECT_DOUBLE_EQ((a / 2.0).gb(), 5.0);
  EXPECT_DOUBLE_EQ(a / b, 2.5);
}

TEST(Units, BandwidthComparisons) {
  EXPECT_LT(Bandwidth::gb_per_s(1.0), Bandwidth::gb_per_s(2.0));
  EXPECT_EQ(Bandwidth::gb_per_s(3.0), Bandwidth::bytes_per_s(3e9));
  EXPECT_TRUE(Bandwidth{}.is_zero());
  EXPECT_FALSE(Bandwidth::gb_per_s(0.1).is_zero());
}

TEST(Units, CompoundAssignment) {
  Bandwidth bw = Bandwidth::gb_per_s(1.0);
  bw += Bandwidth::gb_per_s(2.0);
  EXPECT_DOUBLE_EQ(bw.gb(), 3.0);
  bw -= Bandwidth::gb_per_s(0.5);
  EXPECT_DOUBLE_EQ(bw.gb(), 2.5);
}

TEST(Units, TransferTime) {
  // 64 MiB at 1 GB/s.
  const Seconds t = transfer_time(64 * kMiB, Bandwidth::gb_per_s(1.0));
  EXPECT_NEAR(t.value(), 64.0 * 1024 * 1024 / 1e9, 1e-12);
}

TEST(Units, AchievedBandwidth) {
  const Bandwidth bw = achieved_bandwidth(2'000'000'000ull, Seconds(2.0));
  EXPECT_DOUBLE_EQ(bw.gb(), 1.0);
  EXPECT_THROW((void)achieved_bandwidth(1, Seconds(0.0)), ContractViolation);
}

TEST(Units, SecondsArithmeticAndOrdering) {
  const Seconds a(1.5);
  const Seconds b(0.5);
  EXPECT_DOUBLE_EQ((a + b).value(), 2.0);
  EXPECT_DOUBLE_EQ((a - b).value(), 1.0);
  EXPECT_GT(a, b);
  Seconds c(0.0);
  c += a;
  EXPECT_DOUBLE_EQ(c.value(), 1.5);
}

TEST(Units, BinaryConstants) {
  EXPECT_EQ(kKiB, 1024u);
  EXPECT_EQ(kMiB, 1024u * 1024u);
  EXPECT_EQ(kGiB, 1024ull * 1024ull * 1024ull);
}

}  // namespace
}  // namespace mcm
