#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "util/contracts.hpp"

namespace mcm {
namespace {

TEST(Csv, RendersHeaderAndRows) {
  CsvWriter csv({"n", "bandwidth"});
  csv.add_row({"1", "5.5"});
  csv.add_row({"2", "11.0"});
  EXPECT_EQ(csv.render(), "n,bandwidth\n1,5.5\n2,11.0\n");
}

TEST(Csv, QuotesSpecialCharacters) {
  CsvWriter csv({"text"});
  csv.add_row({"has,comma"});
  csv.add_row({"has\"quote"});
  csv.add_row({"has\nnewline"});
  EXPECT_EQ(csv.render(),
            "text\n\"has,comma\"\n\"has\"\"quote\"\n\"has\nnewline\"\n");
}

TEST(Csv, RejectsMismatchedRow) {
  CsvWriter csv({"a", "b"});
  EXPECT_THROW(csv.add_row({"1"}), ContractViolation);
}

TEST(Csv, WritesFile) {
  CsvWriter csv({"a"});
  csv.add_row({"1"});
  const std::string path = testing::TempDir() + "/mcm_csv_test.csv";
  ASSERT_TRUE(csv.write_file(path));
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "a\n1\n");
  std::remove(path.c_str());
}

TEST(Csv, WriteFileFailsOnBadPath) {
  CsvWriter csv({"a"});
  EXPECT_FALSE(csv.write_file("/nonexistent-dir/file.csv"));
}

}  // namespace
}  // namespace mcm
