#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace mcm {
namespace {

TEST(Strings, FormatFixed) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(3.0, 0), "3");
  EXPECT_EQ(format_fixed(-1.005, 1), "-1.0");
}

TEST(Strings, FormatGbps) { EXPECT_EQ(format_gbps(12.345), "12.35 GB/s"); }

TEST(Strings, FormatPercent) { EXPECT_EQ(format_percent(3.08), "3.08 %"); }

TEST(Strings, PadLeft) {
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_left("abcd", 2), "abcd");
}

TEST(Strings, PadRight) {
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_right("abcd", 2), "abcd");
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Strings, SplitSingleField) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim("\t\n"), "");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("nospace"), "nospace");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("platform henri", "platform"));
  EXPECT_FALSE(starts_with("plat", "platform"));
  EXPECT_TRUE(starts_with("anything", ""));
}

TEST(Strings, ParseDoubleAcceptsCompleteNumbers) {
  EXPECT_EQ(parse_double("0"), 0.0);
  EXPECT_EQ(parse_double("-3.5"), -3.5);
  EXPECT_EQ(parse_double("+2.25"), 2.25);
  EXPECT_EQ(parse_double("1e3"), 1000.0);
  EXPECT_EQ(parse_double("2.5E-1"), 0.25);
  EXPECT_EQ(parse_double(".5"), 0.5);
  EXPECT_EQ(parse_double("+.5"), 0.5);
}

TEST(Strings, ParseDoubleRejectsGarbage) {
  EXPECT_FALSE(parse_double("").has_value());
  EXPECT_FALSE(parse_double("abc").has_value());
  // Trailing garbage after a valid prefix — the std::stod failure mode.
  EXPECT_FALSE(parse_double("3.0x").has_value());
  EXPECT_FALSE(parse_double("1.2.3").has_value());
  EXPECT_FALSE(parse_double("1,5").has_value());
  EXPECT_FALSE(parse_double(" 1").has_value());
  EXPECT_FALSE(parse_double("1 ").has_value());
  // A '+' only introduces a number; it never legitimises a second sign.
  EXPECT_FALSE(parse_double("+").has_value());
  EXPECT_FALSE(parse_double("+-1").has_value());
  EXPECT_FALSE(parse_double("++1").has_value());
  EXPECT_FALSE(parse_double("+e3").has_value());
  // Non-finite spellings are not part of any of our formats.
  EXPECT_FALSE(parse_double("inf").has_value());
  EXPECT_FALSE(parse_double("nan").has_value());
  EXPECT_FALSE(parse_double("1e999").has_value());
}

TEST(Strings, ParseU64) {
  EXPECT_EQ(parse_u64("0"), 0u);
  EXPECT_EQ(parse_u64("18446744073709551615"), 18446744073709551615ull);
  EXPECT_FALSE(parse_u64("").has_value());
  EXPECT_FALSE(parse_u64("-1").has_value());
  EXPECT_FALSE(parse_u64("+1").has_value());
  EXPECT_FALSE(parse_u64("12abc").has_value());
  EXPECT_FALSE(parse_u64("18446744073709551616").has_value());  // overflow
  EXPECT_FALSE(parse_u64("1.5").has_value());
}

}  // namespace
}  // namespace mcm
