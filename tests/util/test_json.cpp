#include <gtest/gtest.h>

#include <string>

#include "util/contracts.hpp"
#include "util/json.hpp"

namespace mcm::json {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(parse("null")->is_null());
  EXPECT_TRUE(parse("true")->as_bool());
  EXPECT_FALSE(parse("false")->as_bool());
  EXPECT_DOUBLE_EQ(parse("42")->as_number(), 42.0);
  EXPECT_DOUBLE_EQ(parse("-3.5e2")->as_number(), -350.0);
  EXPECT_EQ(parse("\"hi\"")->as_string(), "hi");
}

TEST(Json, ParsesEscapes) {
  EXPECT_EQ(parse(R"("a\"b\\c\n")")->as_string(), "a\"b\\c\n");
  EXPECT_EQ(parse(R"("A")")->as_string(), "A");
}

TEST(Json, UnicodeEscapesDecodeToUtf8) {
  // One escape per UTF-8 length class: ASCII, 2-byte, 3-byte, and an
  // astral-plane surrogate pair (4-byte).
  EXPECT_EQ(parse(R"("\u0041")")->as_string(), "A");
  EXPECT_EQ(parse(R"("\u00e9")")->as_string(), "\xc3\xa9");      // e-acute
  EXPECT_EQ(parse(R"("\u20ac")")->as_string(), "\xe2\x82\xac");  // euro
  EXPECT_EQ(parse(R"("\ud83d\ude00")")->as_string(),
            "\xf0\x9f\x98\x80");  // emoji via surrogate pair
  EXPECT_EQ(parse(R"("a\u0000b")")->as_string(),
            (std::string{'a', '\0', 'b'}));
}

TEST(Json, RejectsBadUnicodeEscapes) {
  for (const char* bad : {
           R"("\u12")",        // too short
           R"("\u12g4")",      // non-hex digit
           R"("\ud800")",      // lone high surrogate
           R"("\ud800\n")",    // high surrogate not followed by \u
           R"("\ud800A")",  // high surrogate + non-low-surrogate
           R"("\ude00")",      // lone low surrogate
       }) {
    std::string error;
    EXPECT_FALSE(parse(bad, &error).has_value()) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(Json, ParsesNestedStructures) {
  const auto value =
      parse(R"({"a":[1,2,{"b":true}],"c":{"d":null},"e":"x"})");
  ASSERT_TRUE(value.has_value());
  const Value::Array& a = value->find("a")->as_array();
  ASSERT_EQ(a.size(), 3u);
  EXPECT_DOUBLE_EQ(a[1].as_number(), 2.0);
  EXPECT_TRUE(a[2].find("b")->as_bool());
  EXPECT_TRUE(value->find("c")->find("d")->is_null());
  EXPECT_EQ(value->string_at("e"), "x");
  EXPECT_EQ(value->find("missing"), nullptr);
  EXPECT_EQ(value->number_at("e"), std::nullopt);  // wrong kind
}

TEST(Json, AllowsSurroundingWhitespaceOnly) {
  EXPECT_TRUE(parse("  {\"a\": 1}\n").has_value());
  std::string error;
  EXPECT_FALSE(parse("{} trailing", &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(Json, RejectsMalformedDocuments) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "{\"a\" 1}", "\"unterminated",
        "nul", "01x", "{1:2}"}) {
    std::string error;
    EXPECT_FALSE(parse(bad, &error).has_value()) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(Json, AccessorsAreContractChecked) {
  const Value v = *parse("42");
  EXPECT_THROW((void)v.as_string(), mcm::ContractViolation);
  EXPECT_THROW((void)v.as_object(), mcm::ContractViolation);
}

TEST(Json, RoundTripsReportShapedDocument) {
  const char* doc =
      R"({"schema_version":1,"name":"fig3_henri","metrics":)"
      R"({"mape.comm_all":3.25,"mape.comp_all":2.5}})";
  const auto value = parse(doc);
  ASSERT_TRUE(value.has_value());
  EXPECT_DOUBLE_EQ(*value->number_at("schema_version"), 1.0);
  EXPECT_DOUBLE_EQ(*value->find("metrics")->number_at("mape.comm_all"),
                   3.25);
}

}  // namespace
}  // namespace mcm::json
