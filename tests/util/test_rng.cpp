#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "util/contracts.hpp"

namespace mcm {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformStaysInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(11);
  for (int i = 0; i < 1'000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformBelowCoversRange) {
  Rng rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2'000; ++i) {
    const std::uint64_t v = rng.uniform_below(8);
    EXPECT_LT(v, 8u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformBelowRejectsZero) {
  Rng rng(17);
  EXPECT_THROW((void)rng.uniform_below(0), ContractViolation);
}

TEST(Rng, NormalHasRoughlyUnitMoments) {
  Rng rng(19);
  const int n = 50'000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, NormalScalesMeanAndStddev) {
  Rng rng(23);
  const int n = 50'000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 0.5);
  EXPECT_NEAR(sum / n, 10.0, 0.02);
}

TEST(Rng, NormalRejectsNegativeStddev) {
  Rng rng(27);
  EXPECT_THROW((void)rng.normal(0.0, -1.0), ContractViolation);
}

TEST(StableHash, StableAcrossCalls) {
  EXPECT_EQ(stable_hash("henri"), stable_hash("henri"));
  EXPECT_NE(stable_hash("henri"), stable_hash("dahu"));
  EXPECT_NE(stable_hash(""), stable_hash(" "));
}

TEST(StableHash, CombineIsOrderSensitive) {
  const std::uint64_t a = stable_hash("a");
  const std::uint64_t b = stable_hash("b");
  EXPECT_NE(hash_combine(a, b), hash_combine(b, a));
}

TEST(Splitmix64, AdvancesState) {
  std::uint64_t state = 0;
  const std::uint64_t first = splitmix64(state);
  const std::uint64_t second = splitmix64(state);
  EXPECT_NE(first, second);
  EXPECT_NE(state, 0u);
}

}  // namespace
}  // namespace mcm
