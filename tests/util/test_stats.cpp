#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/contracts.hpp"

namespace mcm {
namespace {

TEST(Stats, MeanOfConstants) {
  const std::vector<double> v{3.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(mean(v), 3.0);
}

TEST(Stats, MeanRejectsEmpty) {
  const std::vector<double> v;
  EXPECT_THROW((void)mean(v), ContractViolation);
}

TEST(Stats, MedianOddAndEven) {
  const std::vector<double> odd{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(median(odd), 3.0);
  const std::vector<double> even{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(Stats, SampleStddev) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(sample_stddev(v), 2.138089935, 1e-6);
  const std::vector<double> single{1.0};
  EXPECT_DOUBLE_EQ(sample_stddev(single), 0.0);
}

TEST(Stats, ArgmaxFindsFirstMaximum) {
  const std::vector<double> v{1.0, 9.0, 3.0, 9.0};
  const Extremum e = argmax(v);
  EXPECT_EQ(e.index, 1u);
  EXPECT_DOUBLE_EQ(e.value, 9.0);
}

TEST(Stats, ArgminFindsFirstMinimum) {
  const std::vector<double> v{4.0, -1.0, 2.0, -1.0};
  const Extremum e = argmin(v);
  EXPECT_EQ(e.index, 1u);
  EXPECT_DOUBLE_EQ(e.value, -1.0);
}

TEST(Stats, FitLineRecoversExactLine) {
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 10; ++i) {
    x.push_back(i);
    y.push_back(2.5 * i - 7.0);
  }
  const LineFit fit = fit_line(x, y);
  EXPECT_NEAR(fit.slope, 2.5, 1e-12);
  EXPECT_NEAR(fit.intercept, -7.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(Stats, FitLineConstantSeries) {
  const std::vector<double> x{0.0, 1.0, 2.0};
  const std::vector<double> y{4.0, 4.0, 4.0};
  const LineFit fit = fit_line(x, y);
  EXPECT_NEAR(fit.slope, 0.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(fit.r_squared, 1.0);
}

TEST(Stats, FitLineRejectsDegenerateInput) {
  const std::vector<double> x{1.0, 1.0};
  const std::vector<double> y{1.0, 2.0};
  EXPECT_THROW((void)fit_line(x, y), ContractViolation);
  const std::vector<double> one{1.0};
  EXPECT_THROW((void)fit_line(one, one), ContractViolation);
}

TEST(Stats, MapeMatchesHandComputation) {
  const std::vector<double> actual{100.0, 50.0};
  const std::vector<double> predicted{90.0, 55.0};
  // (10/100 + 5/50) / 2 * 100 = 10 %.
  EXPECT_NEAR(mape_percent(actual, predicted), 10.0, 1e-12);
}

TEST(Stats, MapeIsZeroForPerfectPrediction) {
  const std::vector<double> v{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(mape_percent(v, v), 0.0);
}

TEST(Stats, MapeRejectsZeroActual) {
  const std::vector<double> actual{0.0};
  const std::vector<double> predicted{1.0};
  EXPECT_THROW((void)mape_percent(actual, predicted), ContractViolation);
}

TEST(Stats, ClampBounds) {
  EXPECT_DOUBLE_EQ(clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(clamp(0.5, 0.0, 1.0), 0.5);
  EXPECT_THROW((void)clamp(0.0, 2.0, 1.0), ContractViolation);
}

TEST(Stats, MovingAverageSmoothsSpike) {
  const std::vector<double> v{1.0, 1.0, 10.0, 1.0, 1.0};
  const std::vector<double> smoothed = moving_average(v, 1);
  ASSERT_EQ(smoothed.size(), v.size());
  EXPECT_DOUBLE_EQ(smoothed[2], 4.0);
  EXPECT_DOUBLE_EQ(smoothed[0], 1.0);
}

TEST(Stats, MovingAverageZeroWindowIsIdentity) {
  const std::vector<double> v{1.0, 2.0, 3.0};
  EXPECT_EQ(moving_average(v, 0), v);
}

}  // namespace
}  // namespace mcm
