#include <gtest/gtest.h>

#include <string>

#include "benchlib/report.hpp"

namespace mcm::bench {
namespace {

BenchReport sample_report() {
  BenchReport report;
  report.name = "fig3_henri";
  report.platform = "henri";
  report.git = "v1-test";
  report.smoke = true;
  report.add_metric("mape.comm_all", 4.0);
  report.add_metric("mape.comp_all", 2.0);
  report.add_metric("placement_0_0.comm_alone_gb", 10.5);
  report.add_series("comm_parallel_gb", {10.5, 9.0, 8.25});
  report.record_stage("figure", 0.125);
  return report;
}

TEST(BenchReport, JsonRoundTripPreservesEverything) {
  const BenchReport original = sample_report();
  std::string error;
  const auto parsed = report_from_json(original.to_json(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->name, original.name);
  EXPECT_EQ(parsed->platform, original.platform);
  EXPECT_EQ(parsed->git, original.git);
  EXPECT_EQ(parsed->smoke, original.smoke);
  EXPECT_EQ(parsed->metrics, original.metrics);
  EXPECT_EQ(parsed->series, original.series);
  EXPECT_EQ(parsed->stage_seconds, original.stage_seconds);
}

TEST(BenchReport, RejectsBadSchema) {
  std::string error;
  EXPECT_FALSE(report_from_json("not json", &error).has_value());
  EXPECT_FALSE(
      report_from_json(R"({"name":"x","metrics":{}})", &error).has_value())
      << "missing schema_version must be rejected";
  EXPECT_FALSE(report_from_json(
                   R"({"schema_version":99,"name":"x","metrics":{}})",
                   &error)
                   .has_value());
  EXPECT_NE(error.find("schema_version"), std::string::npos);
  EXPECT_FALSE(report_from_json(
                   R"({"schema_version":1,"metrics":{}})", &error)
                   .has_value())
      << "missing name must be rejected";
  EXPECT_FALSE(report_from_json(
                   R"({"schema_version":1,"name":"x"})", &error)
                   .has_value())
      << "missing metrics must be rejected";
  EXPECT_FALSE(report_from_json(
                   R"({"schema_version":1,"name":"x",)"
                   R"("metrics":{"m":"oops"}})",
                   &error)
                   .has_value())
      << "non-numeric metric must be rejected";
}

TEST(BenchDiff, IdenticalReportsPass) {
  const BenchReport report = sample_report();
  const ReportDiff diff = diff_reports(report, report, 0.02);
  EXPECT_TRUE(diff.comparable);
  EXPECT_FALSE(diff.regression());
  EXPECT_EQ(diff.beyond_count(), 0u);
  EXPECT_EQ(diff.entries.size(), report.metrics.size());
}

TEST(BenchDiff, SmallWobblePassesLargeRegressionFlagged) {
  const BenchReport baseline = sample_report();

  BenchReport wobble = baseline;
  wobble.metrics["mape.comm_all"] *= 1.01;  // 1 % drift
  EXPECT_FALSE(diff_reports(baseline, wobble, 0.02).regression());

  BenchReport regressed = baseline;
  regressed.metrics["mape.comm_all"] *= 1.10;  // 10 % drift
  const ReportDiff diff = diff_reports(baseline, regressed, 0.02);
  EXPECT_TRUE(diff.regression());
  EXPECT_EQ(diff.beyond_count(), 1u);
  const std::string rendered = render_diff(diff, 0.02);
  EXPECT_NE(rendered.find("REGRESSION"), std::string::npos) << rendered;
}

TEST(BenchDiff, ThresholdIsConfigurable) {
  const BenchReport baseline = sample_report();
  BenchReport candidate = baseline;
  candidate.metrics["mape.comm_all"] *= 1.10;
  EXPECT_TRUE(diff_reports(baseline, candidate, 0.02).regression());
  EXPECT_FALSE(diff_reports(baseline, candidate, 0.25).regression());
}

TEST(BenchDiff, MissingMetricIsARegressionExtraIsNot) {
  const BenchReport baseline = sample_report();

  BenchReport shrunk = baseline;
  shrunk.metrics.erase("mape.comm_all");
  const ReportDiff missing = diff_reports(baseline, shrunk, 0.02);
  EXPECT_TRUE(missing.regression());
  ASSERT_EQ(missing.missing_in_candidate.size(), 1u);
  EXPECT_EQ(missing.missing_in_candidate[0], "mape.comm_all");

  BenchReport grown = baseline;
  grown.add_metric("brand.new", 1.0);
  const ReportDiff extra = diff_reports(baseline, grown, 0.02);
  EXPECT_FALSE(extra.regression());
  ASSERT_EQ(extra.extra_in_candidate.size(), 1u);
}

TEST(BenchDiff, ZeroBaselineMovingOffZeroIsFlagged) {
  BenchReport baseline = sample_report();
  baseline.metrics["zero"] = 0.0;
  BenchReport candidate = baseline;
  candidate.metrics["zero"] = 0.5;
  EXPECT_TRUE(diff_reports(baseline, candidate, 0.02).regression());
  // A zero staying zero is fine.
  EXPECT_FALSE(diff_reports(baseline, baseline, 0.02).regression());
}

TEST(BenchDiff, DifferentBenchmarksAreNotComparable) {
  BenchReport baseline = sample_report();
  BenchReport other = sample_report();
  other.name = "fig5_diablo";
  const ReportDiff diff = diff_reports(baseline, other, 0.02);
  EXPECT_FALSE(diff.comparable);
  EXPECT_TRUE(diff.regression());
  EXPECT_NE(render_diff(diff, 0.02).find("not comparable"),
            std::string::npos);
}

TEST(BenchReport, StagesAndSeriesAreInformationalOnly) {
  const BenchReport baseline = sample_report();
  BenchReport candidate = baseline;
  candidate.stage_seconds["figure"] = 10.0;       // wall-time noise
  candidate.series["comm_parallel_gb"] = {1.0};  // raw data changed
  EXPECT_FALSE(diff_reports(baseline, candidate, 0.02).regression());
}

}  // namespace
}  // namespace mcm::bench
