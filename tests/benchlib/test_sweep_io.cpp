#include "benchlib/sweep_io.hpp"

#include <gtest/gtest.h>

#include "benchlib/backend.hpp"
#include "benchlib/runner.hpp"
#include "model/model.hpp"
#include "topo/platforms.hpp"

namespace mcm::bench {
namespace {

SweepResult small_sweep(const char* platform = "occigen") {
  SimBackend backend(topo::make_platform(platform));
  return run_all_placements(backend);
}

TEST(SweepIo, RoundTripPreservesEverything) {
  const SweepResult original = small_sweep();
  const std::string csv = sweep_to_csv(original);
  std::string error;
  const auto parsed = sweep_from_csv(csv, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->platform, original.platform);
  EXPECT_EQ(parsed->numa_per_socket, original.numa_per_socket);
  ASSERT_EQ(parsed->curves.size(), original.curves.size());
  for (const PlacementCurve& curve : original.curves) {
    ASSERT_TRUE(parsed->has_curve(curve.comp_numa, curve.comm_numa));
    const PlacementCurve& other =
        parsed->curve(curve.comp_numa, curve.comm_numa);
    ASSERT_EQ(other.points.size(), curve.points.size());
    for (std::size_t i = 0; i < curve.points.size(); ++i) {
      EXPECT_NEAR(other.points[i].compute_parallel_gb,
                  curve.points[i].compute_parallel_gb, 1e-5);
      EXPECT_NEAR(other.points[i].comm_alone_gb,
                  curve.points[i].comm_alone_gb, 1e-5);
    }
  }
}

TEST(SweepIo, CalibrationFromSavedCsvMatchesDirectCalibration) {
  // The offline workflow: save measurements, reload, calibrate — the
  // resulting model must predict identically (up to CSV precision).
  const SweepResult original = small_sweep("henri");
  const auto reloaded = sweep_from_csv(sweep_to_csv(original));
  ASSERT_TRUE(reloaded.has_value());
  const auto direct = model::ContentionModel::from_sweep(original);
  const auto offline = model::ContentionModel::from_sweep(*reloaded);
  for (std::size_t n = 1; n <= direct.max_cores(); ++n) {
    const auto a = direct.predict({topo::NumaId(0), topo::NumaId(1)});
    const auto b = offline.predict({topo::NumaId(0), topo::NumaId(1)});
    EXPECT_NEAR(a.comm_parallel_gb[n - 1], b.comm_parallel_gb[n - 1], 1e-4);
    EXPECT_NEAR(a.compute_parallel_gb[n - 1], b.compute_parallel_gb[n - 1],
                1e-4);
  }
}

TEST(SweepIo, RowsInAnyOrderAreAccepted) {
  const std::string csv =
      "# platform x\n# numa_per_socket 1\n"
      "comp_numa,comm_numa,cores,compute_alone_gb,comm_alone_gb,"
      "compute_parallel_gb,comm_parallel_gb\n"
      "0,0,3,15,12,14,9\n"
      "0,0,1,5,12,5,12\n"
      "0,0,2,10,12,10,11\n";
  const auto sweep = sweep_from_csv(csv);
  ASSERT_TRUE(sweep.has_value());
  const PlacementCurve& curve =
      sweep->curve(topo::NumaId(0), topo::NumaId(0));
  ASSERT_EQ(curve.points.size(), 3u);
  EXPECT_DOUBLE_EQ(curve.at(2).compute_alone_gb, 10.0);
}

TEST(SweepIo, RejectsSparseCoreCounts) {
  const std::string csv =
      "# platform x\n# numa_per_socket 1\n"
      "comp_numa,comm_numa,cores,compute_alone_gb,comm_alone_gb,"
      "compute_parallel_gb,comm_parallel_gb\n"
      "0,0,1,5,12,5,12\n"
      "0,0,3,15,12,14,9\n";
  std::string error;
  EXPECT_FALSE(sweep_from_csv(csv, &error).has_value());
  EXPECT_NE(error.find("dense"), std::string::npos) << error;
}

TEST(SweepIo, RejectsMissingHeaders) {
  std::string error;
  EXPECT_FALSE(sweep_from_csv("", &error).has_value());
  const std::string no_numa =
      "# platform x\n"
      "comp_numa,comm_numa,cores,compute_alone_gb,comm_alone_gb,"
      "compute_parallel_gb,comm_parallel_gb\n"
      "0,0,1,5,12,5,12\n";
  EXPECT_FALSE(sweep_from_csv(no_numa, &error).has_value());
  EXPECT_NE(error.find("numa_per_socket"), std::string::npos) << error;
}

TEST(SweepIo, RejectsBadRows) {
  const std::string base =
      "# platform x\n# numa_per_socket 1\n"
      "comp_numa,comm_numa,cores,compute_alone_gb,comm_alone_gb,"
      "compute_parallel_gb,comm_parallel_gb\n";
  std::string error;
  EXPECT_FALSE(sweep_from_csv(base + "0,0,1,5,12\n", &error).has_value());
  EXPECT_NE(error.find("7 fields"), std::string::npos);
  EXPECT_FALSE(
      sweep_from_csv(base + "0,0,one,5,12,5,12\n", &error).has_value());
  EXPECT_NE(error.find("field 3"), std::string::npos) << error;
  EXPECT_NE(error.find("not a number"), std::string::npos) << error;
  // Trailing garbage after a valid prefix must not parse (std::stod used
  // to accept "5.0x" silently).
  EXPECT_FALSE(
      sweep_from_csv(base + "0,0,1,5.0x,12,5,12\n", &error).has_value());
  EXPECT_NE(error.find("field 4"), std::string::npos) << error;
  // Negative bandwidths and negative ids are rejected, not wrapped.
  EXPECT_FALSE(
      sweep_from_csv(base + "0,-1,1,5,12,5,12\n", &error).has_value());
  EXPECT_FALSE(
      sweep_from_csv(base + "0,0,1,-5,12,5,12\n", &error).has_value());
}

TEST(SweepIo, RejectsWrongColumnHeader) {
  std::string error;
  const std::string csv =
      "# platform x\n# numa_per_socket 1\nwrong,header\n0,0\n";
  EXPECT_FALSE(sweep_from_csv(csv, &error).has_value());
  EXPECT_NE(error.find("column header"), std::string::npos);
}

}  // namespace
}  // namespace mcm::bench
