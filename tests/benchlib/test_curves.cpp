#include "benchlib/curves.hpp"

#include <gtest/gtest.h>

#include "util/contracts.hpp"

namespace mcm::bench {
namespace {

PlacementCurve sample_curve() {
  PlacementCurve curve;
  curve.comp_numa = topo::NumaId(0);
  curve.comm_numa = topo::NumaId(1);
  for (std::size_t n = 1; n <= 4; ++n) {
    BandwidthPoint p;
    p.cores = n;
    p.compute_alone_gb = 5.0 * static_cast<double>(n);
    p.comm_alone_gb = 12.0;
    p.compute_parallel_gb = 4.5 * static_cast<double>(n);
    p.comm_parallel_gb = 12.0 - static_cast<double>(n);
    curve.points.push_back(p);
  }
  return curve;
}

TEST(Curves, AtIsOneBased) {
  const PlacementCurve c = sample_curve();
  EXPECT_EQ(c.at(1).cores, 1u);
  EXPECT_DOUBLE_EQ(c.at(3).compute_alone_gb, 15.0);
  EXPECT_THROW((void)c.at(0), ContractViolation);
  EXPECT_THROW((void)c.at(5), ContractViolation);
}

TEST(Curves, AtLooksUpSparseCurvesByCoreCount) {
  // A core_step=2 sweep measures cores 1, 3 only: at() must find the
  // measured counts and reject the skipped ones.
  PlacementCurve sparse = sample_curve();
  sparse.points.erase(sparse.points.begin() + 3);  // drop cores == 4
  sparse.points.erase(sparse.points.begin() + 1);  // drop cores == 2
  EXPECT_EQ(sparse.at(1).cores, 1u);
  EXPECT_DOUBLE_EQ(sparse.at(3).compute_alone_gb, 15.0);
  EXPECT_THROW((void)sparse.at(2), ContractViolation);
  EXPECT_THROW((void)sparse.at(4), ContractViolation);
  EXPECT_THROW((void)sparse.at(5), ContractViolation);
}

TEST(Curves, SeriesExtraction) {
  const PlacementCurve c = sample_curve();
  EXPECT_EQ(c.series(Series::kComputeAlone),
            (std::vector<double>{5.0, 10.0, 15.0, 20.0}));
  EXPECT_EQ(c.series(Series::kCommAlone),
            (std::vector<double>{12.0, 12.0, 12.0, 12.0}));
  EXPECT_EQ(c.series(Series::kCommParallel),
            (std::vector<double>{11.0, 10.0, 9.0, 8.0}));
}

TEST(Curves, TotalParallelSumsBothStreams) {
  const PlacementCurve c = sample_curve();
  const auto total = c.total_parallel();
  ASSERT_EQ(total.size(), 4u);
  EXPECT_DOUBLE_EQ(total[0], 4.5 + 11.0);
  EXPECT_DOUBLE_EQ(total[3], 18.0 + 8.0);
}

TEST(Curves, CsvHasHeaderAndOneRowPerPoint) {
  const std::string csv = to_csv(sample_curve());
  std::size_t lines = 0;
  for (char ch : csv) {
    if (ch == '\n') ++lines;
  }
  EXPECT_EQ(lines, 5u);  // header + 4 points
  EXPECT_NE(csv.find("cores,compute_alone_gb"), std::string::npos);
  EXPECT_NE(csv.find("3,15.0000"), std::string::npos);
}

TEST(Curves, SweepLookup) {
  SweepResult sweep;
  sweep.platform = "x";
  sweep.numa_per_socket = 1;
  sweep.curves.push_back(sample_curve());
  EXPECT_TRUE(sweep.has_curve(topo::NumaId(0), topo::NumaId(1)));
  EXPECT_FALSE(sweep.has_curve(topo::NumaId(1), topo::NumaId(0)));
  EXPECT_EQ(&sweep.curve(topo::NumaId(0), topo::NumaId(1)),
            &sweep.curves.front());
  EXPECT_THROW((void)sweep.curve(topo::NumaId(1), topo::NumaId(1)),
               ContractViolation);
}

TEST(Curves, SeriesNames) {
  EXPECT_STREQ(to_string(Series::kComputeAlone), "compute-alone");
  EXPECT_STREQ(to_string(Series::kCommParallel), "comm-parallel");
}

}  // namespace
}  // namespace mcm::bench
