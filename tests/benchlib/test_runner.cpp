#include "benchlib/runner.hpp"

#include <gtest/gtest.h>

#include "topo/platforms.hpp"
#include "util/contracts.hpp"

namespace mcm::bench {
namespace {

TEST(Runner, PlacementSweepCoversAllCoreCounts) {
  SimBackend backend(topo::make_occigen());
  const PlacementCurve curve =
      run_placement(backend, topo::NumaId(0), topo::NumaId(0));
  ASSERT_EQ(curve.points.size(), backend.max_computing_cores());
  for (std::size_t i = 0; i < curve.points.size(); ++i) {
    EXPECT_EQ(curve.points[i].cores, i + 1);
    EXPECT_GT(curve.points[i].compute_alone_gb, 0.0);
    EXPECT_GT(curve.points[i].comm_alone_gb, 0.0);
    EXPECT_GT(curve.points[i].compute_parallel_gb, 0.0);
    EXPECT_GT(curve.points[i].comm_parallel_gb, 0.0);
  }
}

TEST(Runner, CommAloneIsConstantAcrossCoreCounts) {
  SimBackend backend(topo::make_occigen());
  const PlacementCurve curve =
      run_placement(backend, topo::NumaId(0), topo::NumaId(1));
  for (const BandwidthPoint& p : curve.points) {
    EXPECT_DOUBLE_EQ(p.comm_alone_gb, curve.points.front().comm_alone_gb);
  }
}

TEST(Runner, MaxCoresOptionTruncatesSweep) {
  SimBackend backend(topo::make_occigen());
  SweepOptions options;
  options.max_cores = 5;
  const PlacementCurve curve =
      run_placement(backend, topo::NumaId(0), topo::NumaId(0), options);
  EXPECT_EQ(curve.points.size(), 5u);
}

TEST(Runner, AllPlacementsProducesNumaSquaredCurves) {
  SimBackend backend(topo::make_occigen());
  SweepOptions options;
  options.max_cores = 4;
  const SweepResult sweep = run_all_placements(backend, options);
  EXPECT_EQ(sweep.platform, "occigen");
  EXPECT_EQ(sweep.numa_per_socket, 1u);
  EXPECT_EQ(sweep.curves.size(), 4u);  // 2 NUMA nodes -> 2^2 placements
  for (std::uint32_t comp = 0; comp < 2; ++comp) {
    for (std::uint32_t comm = 0; comm < 2; ++comm) {
      EXPECT_TRUE(
          sweep.has_curve(topo::NumaId(comp), topo::NumaId(comm)));
    }
  }
}

TEST(Runner, CalibrationPlacementsAreFirstNodesOfEachSocket) {
  SimBackend two(topo::make_henri());
  const CalibrationPlacements p2 = calibration_placements(two);
  EXPECT_EQ(p2.local, topo::NumaId(0));
  EXPECT_EQ(p2.remote, topo::NumaId(1));

  SimBackend four(topo::make_henri_subnuma());
  const CalibrationPlacements p4 = calibration_placements(four);
  EXPECT_EQ(p4.local, topo::NumaId(0));
  EXPECT_EQ(p4.remote, topo::NumaId(2));
}

TEST(Runner, CalibrationSweepMeasuresExactlyTwoPlacements) {
  SimBackend backend(topo::make_henri_subnuma());
  SweepOptions options;
  options.max_cores = 4;
  const SweepResult sweep = run_calibration_sweep(backend, options);
  ASSERT_EQ(sweep.curves.size(), 2u);
  EXPECT_EQ(sweep.curves[0].comp_numa, topo::NumaId(0));
  EXPECT_EQ(sweep.curves[0].comm_numa, topo::NumaId(0));
  EXPECT_EQ(sweep.curves[1].comp_numa, topo::NumaId(2));
  EXPECT_EQ(sweep.curves[1].comm_numa, topo::NumaId(2));
}

TEST(Runner, SweepIsDeterministic) {
  SimBackend a(topo::make_pyxis());
  SimBackend b(topo::make_pyxis());
  SweepOptions options;
  options.max_cores = 6;
  const PlacementCurve ca =
      run_placement(a, topo::NumaId(0), topo::NumaId(1), options);
  const PlacementCurve cb =
      run_placement(b, topo::NumaId(0), topo::NumaId(1), options);
  for (std::size_t i = 0; i < ca.points.size(); ++i) {
    EXPECT_DOUBLE_EQ(ca.points[i].compute_parallel_gb,
                     cb.points[i].compute_parallel_gb);
    EXPECT_DOUBLE_EQ(ca.points[i].comm_parallel_gb,
                     cb.points[i].comm_parallel_gb);
  }
}

TEST(Runner, RejectsInvalidPlacements) {
  SimBackend backend(topo::make_occigen());
  EXPECT_THROW(
      (void)run_placement(backend, topo::NumaId(7), topo::NumaId(0)),
      ContractViolation);
  SweepOptions bad;
  bad.core_step = 0;
  EXPECT_THROW(
      (void)run_placement(backend, topo::NumaId(0), topo::NumaId(0), bad),
      ContractViolation);
}

}  // namespace
}  // namespace mcm::bench
