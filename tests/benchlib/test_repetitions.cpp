// Measurement repetitions: averaging independent runs must reduce noise
// and thus tighten the calibrated parameters.
#include <gtest/gtest.h>

#include <cmath>

#include "benchlib/backend.hpp"
#include "benchlib/runner.hpp"
#include "model/calibration.hpp"
#include "topo/platforms.hpp"
#include "util/contracts.hpp"

namespace mcm::bench {
namespace {

TEST(Repetitions, RunsSeeIndependentJitter) {
  sim::SimMachine machine(topo::make_pyxis());
  const double first = machine.measure_comm_alone(topo::NumaId(0)).gb();
  machine.set_run_index(1);
  const double second = machine.measure_comm_alone(topo::NumaId(0)).gb();
  EXPECT_NE(first, second);
  machine.set_run_index(0);
  EXPECT_DOUBLE_EQ(machine.measure_comm_alone(topo::NumaId(0)).gb(), first);
}

TEST(Repetitions, SingleRepetitionMatchesRunZero) {
  SimBackend a(topo::make_henri());
  SimBackend b(topo::make_henri());
  SweepOptions once;
  once.max_cores = 5;
  once.repetitions = 1;
  const PlacementCurve with_option =
      run_placement(a, topo::NumaId(0), topo::NumaId(0), once);
  SweepOptions plain;
  plain.max_cores = 5;
  const PlacementCurve without =
      run_placement(b, topo::NumaId(0), topo::NumaId(0), plain);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(with_option.points[i].compute_parallel_gb,
                     without.points[i].compute_parallel_gb);
  }
}

TEST(Repetitions, AveragingShrinksDeviationFromSteadyState) {
  // On the noisy platform, the averaged curve must sit closer to the
  // noise-free steady-state rates than a single run does.
  const auto deviation = [](std::size_t reps) {
    SimBackend backend(topo::make_pyxis());
    SweepOptions options;
    options.repetitions = reps;
    const PlacementCurve curve =
        run_placement(backend, topo::NumaId(0), topo::NumaId(0), options);
    double acc = 0.0;
    for (const BandwidthPoint& p : curve.points) {
      const double steady = backend.machine()
                                .steady_parallel(p.cores, topo::NumaId(0),
                                                 topo::NumaId(0))
                                .comm.gb();
      acc += std::abs(p.comm_parallel_gb - steady) / steady;
    }
    return acc / static_cast<double>(curve.points.size());
  };
  EXPECT_LT(deviation(8), deviation(1));
}

TEST(Repetitions, DeterministicAcrossInvocations) {
  SweepOptions options;
  options.max_cores = 4;
  options.repetitions = 3;
  SimBackend a(topo::make_pyxis());
  SimBackend b(topo::make_pyxis());
  const PlacementCurve ca =
      run_placement(a, topo::NumaId(0), topo::NumaId(1), options);
  const PlacementCurve cb =
      run_placement(b, topo::NumaId(0), topo::NumaId(1), options);
  for (std::size_t i = 0; i < ca.points.size(); ++i) {
    EXPECT_DOUBLE_EQ(ca.points[i].comm_parallel_gb,
                     cb.points[i].comm_parallel_gb);
  }
}

TEST(Repetitions, ZeroRepetitionsRejected) {
  SimBackend backend(topo::make_occigen());
  SweepOptions options;
  options.repetitions = 0;
  EXPECT_THROW((void)run_placement(backend, topo::NumaId(0),
                                   topo::NumaId(0), options),
               mcm::ContractViolation);
}

}  // namespace
}  // namespace mcm::bench
