#include "eval/tables.hpp"

#include <gtest/gtest.h>

#include "eval/experiments.hpp"

namespace mcm::eval {
namespace {

TEST(Tables, TableOneListsAllSixPlatforms) {
  const std::string table = render_table1();
  for (const char* name :
       {"henri", "henri-subnuma", "dahu", "diablo", "pyxis", "occigen"}) {
    EXPECT_NE(table.find(name), std::string::npos) << name;
  }
  EXPECT_NE(table.find("Omni-Path"), std::string::npos);
  EXPECT_NE(table.find("InfiniBand"), std::string::npos);
}

TEST(Tables, TableTwoHasOneRowPerPlatformPlusAverage) {
  const std::vector<model::ErrorReport> reports = run_table2();
  ASSERT_EQ(reports.size(), 6u);
  EXPECT_EQ(reports[0].platform, "henri");
  EXPECT_EQ(reports[5].platform, "occigen");
  const std::string table = render_table2(reports);
  EXPECT_NE(table.find("Average"), std::string::npos);
}

TEST(Tables, TableTwoReproducesPaperShape) {
  const std::vector<model::ErrorReport> reports = run_table2();
  // Headline claims of the paper's Table II, as orderings:
  const auto find = [&](const std::string& name) -> const auto& {
    for (const auto& r : reports) {
      if (r.platform == name) return r;
    }
    throw std::runtime_error("missing " + name);
  };
  // occigen is the most accurate platform overall.
  for (const auto& r : reports) {
    if (r.platform != "occigen") {
      EXPECT_LE(find("occigen").average, r.average) << r.platform;
    }
  }
  // pyxis has the worst communication error, concentrated on non-samples.
  for (const auto& r : reports) {
    if (r.platform != "pyxis") {
      EXPECT_GE(find("pyxis").comm_non_samples, r.comm_non_samples)
          << r.platform;
    }
  }
}

TEST(Experiments, IndexCoversEveryTableAndFigure) {
  const auto index = experiment_index();
  ASSERT_EQ(index.size(), 17u);
  std::size_t figures = 0;
  std::size_t tables = 0;
  for (const ExperimentInfo& info : index) {
    EXPECT_FALSE(info.bench_target.empty());
    if (info.artefact.find("Figure") != std::string::npos) ++figures;
    if (info.artefact.find("Table") != std::string::npos) ++tables;
  }
  EXPECT_EQ(figures, 7u);  // Figures 2-8
  EXPECT_EQ(tables, 2u);   // Tables I and II
  EXPECT_NE(render_experiment_index().find("bench_fig4_henri_subnuma"),
            std::string::npos);
}

}  // namespace
}  // namespace mcm::eval
