#include "eval/figures.hpp"

#include <gtest/gtest.h>

#include "util/contracts.hpp"

namespace mcm::eval {
namespace {

TEST(Figures, MakeFigureCoversAllPlacements) {
  const FigureData figure = make_figure("Figure 3", "henri");
  EXPECT_EQ(figure.platform, "henri");
  EXPECT_EQ(figure.subplots.size(), 4u);  // 2 NUMA nodes -> 2^2
  std::size_t samples = 0;
  for (const FigureSeries& series : figure.subplots) {
    EXPECT_EQ(series.measured.points.size(), 17u);
    EXPECT_EQ(series.predicted.comm_parallel_gb.size(), 17u);
    if (series.is_sample) ++samples;
  }
  EXPECT_EQ(samples, 2u);
}

TEST(Figures, SubplotRenderShowsMeasuredAndModelColumns) {
  const FigureData figure = make_figure("Figure 3", "henri");
  const std::string text = render_subplot(figure.subplots.front());
  EXPECT_NE(text.find("comp par (model)"), std::string::npos);
  EXPECT_NE(text.find("comm par (model)"), std::string::npos);
  EXPECT_NE(text.find("prediction error"), std::string::npos);
  EXPECT_NE(text.find("[model sample]"), std::string::npos);
}

TEST(Figures, FigureRenderNamesPlatformAndId) {
  const FigureData figure = make_figure("Figure 6", "occigen");
  const std::string text = render_figure(figure);
  EXPECT_NE(text.find("Figure 6"), std::string::npos);
  EXPECT_NE(text.find("occigen"), std::string::npos);
}

TEST(Figures, CsvHasOneRowPerPlacementAndCoreCount) {
  const FigureData figure = make_figure("Figure 6", "occigen");
  const std::string csv = figure_csv(figure);
  std::size_t lines = 0;
  for (char c : csv) {
    if (c == '\n') ++lines;
  }
  // header + 4 placements x 13 core counts
  EXPECT_EQ(lines, 1u + 4u * 13u);
}

TEST(Figures, StackedViewAnnotatesAnchors) {
  const FigureData figure = make_figure("Figure 2", "henri-subnuma");
  const std::string text =
      render_stacked(figure, topo::NumaId(0), topo::NumaId(0));
  EXPECT_NE(text.find("Nmax_par"), std::string::npos);
  EXPECT_NE(text.find("Nmax_seq"), std::string::npos);
  EXPECT_NE(text.find('#'), std::string::npos);
  EXPECT_NE(text.find('+'), std::string::npos);
}

TEST(Figures, StackedViewRejectsUnknownPlacement) {
  const FigureData figure = make_figure("Figure 3", "henri");
  EXPECT_THROW(
      (void)render_stacked(figure, topo::NumaId(7), topo::NumaId(0)),
      ContractViolation);
}

}  // namespace
}  // namespace mcm::eval
