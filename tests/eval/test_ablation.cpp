#include "eval/ablation.hpp"

#include <gtest/gtest.h>

#include "benchlib/backend.hpp"
#include "util/contracts.hpp"

namespace mcm::eval {
namespace {

TEST(Ablation, VariantListStartsWithBaseline) {
  const auto variants = hardware_variants();
  ASSERT_GE(variants.size(), 5u);
  EXPECT_EQ(variants.front(), "baseline");
}

TEST(Ablation, BaselineVariantIsIdentity) {
  const topo::PlatformSpec original = topo::make_henri();
  const topo::PlatformSpec same =
      apply_hardware_variant(topo::make_henri(), "baseline");
  for (std::size_t l = 0; l < original.machine.links().size(); ++l) {
    EXPECT_DOUBLE_EQ(same.machine.links()[l].contention.dma_floor.gb(),
                     original.machine.links()[l].contention.dma_floor.gb());
  }
}

TEST(Ablation, NoDmaFloorRemovesFloors) {
  const topo::PlatformSpec spec =
      apply_hardware_variant(topo::make_henri(), "no-dma-floor");
  for (const topo::Link& link : spec.machine.links()) {
    EXPECT_LE(link.contention.dma_floor.gb(), 0.2 + 1e-9);
  }
}

TEST(Ablation, NoHostCouplingClearsAmbientSockets) {
  const topo::PlatformSpec spec =
      apply_hardware_variant(topo::make_henri(), "no-host-coupling");
  for (const topo::Link& link : spec.machine.links()) {
    EXPECT_FALSE(link.ambient_socket.is_valid());
    EXPECT_TRUE(link.contention.ambient_cpu_degradation.is_zero());
  }
}

TEST(Ablation, UnknownVariantThrows) {
  EXPECT_THROW(
      (void)apply_hardware_variant(topo::make_henri(), "no-such-thing"),
      ContractViolation);
}

TEST(Ablation, NoDmaFloorStarvesCommUnderFullLoad) {
  // Mechanism check: without floors a fully loaded controller pushes the
  // network close to zero.
  bench::SimBackend backend(
      apply_hardware_variant(topo::make_henri(), "no-dma-floor"));
  const auto full = backend.machine().steady_parallel(
      17, topo::NumaId(0), topo::NumaId(0));
  EXPECT_LT(full.comm.gb(), 1.0);
}

TEST(Ablation, FairShareArbiterGivesCommMoreThanPriority) {
  // Disable the NIC host coupling so that only the arbitration policy
  // differs between the two runs (the PCIe clamp would otherwise bound
  // both results identically at high core counts).
  const topo::PlatformSpec spec =
      apply_hardware_variant(topo::make_dahu(), "no-host-coupling");
  bench::SimBackend priority(spec);
  bench::SimBackend fair(spec, sim::ArbitrationPolicy::kFairShare);
  const std::size_t n = 15;
  const auto with_priority =
      priority.machine().steady_parallel(n, topo::NumaId(0), topo::NumaId(0));
  const auto with_fair =
      fair.machine().steady_parallel(n, topo::NumaId(0), topo::NumaId(0));
  // Max-min fairness treats the NIC like one more requestor instead of a
  // lower class pinned to its floor, so it keeps more bandwidth...
  EXPECT_GT(with_fair.comm.gb(), with_priority.comm.gb() + 1.0);
  // ...at the expense of the computing cores.
  EXPECT_LT(with_fair.compute.gb(), with_priority.compute.gb() - 0.5);
}

TEST(Ablation, RunHardwareAblationCoversAllVariants) {
  const std::vector<AblationResult> results =
      run_hardware_ablation("occigen");
  ASSERT_EQ(results.size(), hardware_variants().size());
  for (const AblationResult& result : results) {
    EXPECT_FALSE(result.note.empty()) << result.variant;
    EXPECT_GE(result.report.average, 0.0);
  }
  const std::string table = render_ablation(results);
  EXPECT_NE(table.find("no-dma-floor"), std::string::npos);
  EXPECT_NE(table.find("fair-share-arbiter"), std::string::npos);
}

TEST(Ablation, PredictorComparisonRanksPaperModelFirst) {
  const std::vector<model::ErrorReport> reports =
      run_predictor_comparison("henri");
  ASSERT_EQ(reports.size(), 4u);
  EXPECT_NE(reports[0].platform.find("paper-model"), std::string::npos);
  for (std::size_t i = 1; i < reports.size(); ++i) {
    EXPECT_LT(reports[0].average, reports[i].average)
        << reports[i].platform;
  }
}

}  // namespace
}  // namespace mcm::eval
