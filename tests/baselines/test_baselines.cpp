#include "baselines/baselines.hpp"

#include <gtest/gtest.h>

#include "benchlib/backend.hpp"
#include "benchlib/runner.hpp"
#include "topo/platforms.hpp"
#include "util/contracts.hpp"

namespace mcm::baseline {
namespace {

bench::SweepResult calibration(const char* platform) {
  bench::SimBackend backend(topo::make_platform(platform));
  return bench::run_calibration_sweep(backend);
}

RegimeScalars simple_scalars(double b_comp, double b_comm, double capacity,
                             std::size_t cores) {
  RegimeScalars s;
  s.b_comp_seq = b_comp;
  s.b_comm_seq = b_comm;
  s.capacity = capacity;
  s.solo_capacity = capacity;
  s.max_cores = cores;
  return s;
}

TEST(Baselines, RegimeScalarsFromCurve) {
  const bench::SweepResult sweep = calibration("henri");
  const RegimeScalars local = regime_scalars(sweep.curves.front());
  EXPECT_NEAR(local.b_comp_seq, 5.5, 0.2);
  EXPECT_NEAR(local.b_comm_seq, 12.2, 0.3);
  EXPECT_GT(local.capacity, 80.0);
  EXPECT_GT(local.solo_capacity, 80.0);
  EXPECT_EQ(local.max_cores, 17u);
}

TEST(Baselines, PerfectScalingIgnoresContention) {
  const PerfectScalingBaseline baseline(
      simple_scalars(5.0, 12.0, 50.0, 10),
      simple_scalars(3.0, 11.0, 30.0, 10), 1);
  const model::PredictedCurve curve =
      baseline.predict(topo::NumaId(0), topo::NumaId(0));
  // Even far past the 50 GB/s capacity, the prediction keeps scaling.
  EXPECT_DOUBLE_EQ(curve.compute_parallel_gb[9], 50.0);
  EXPECT_DOUBLE_EQ(curve.comm_parallel_gb[9], 12.0);
}

TEST(Baselines, QueueingSharesProportionally) {
  const QueueingBaseline baseline(simple_scalars(5.0, 10.0, 50.0, 10),
                                  simple_scalars(3.0, 10.0, 30.0, 10), 1);
  const model::PredictedCurve curve =
      baseline.predict(topo::NumaId(0), topo::NumaId(0));
  // n = 4: demand 30 total < 50 -> everyone satisfied.
  EXPECT_DOUBLE_EQ(curve.compute_parallel_gb[3], 20.0);
  EXPECT_DOUBLE_EQ(curve.comm_parallel_gb[3], 10.0);
  // n = 10: demand 60 > 50 -> proportional: compute 50*50/60, comm 10*50/60.
  EXPECT_NEAR(curve.compute_parallel_gb[9], 50.0 * 50.0 / 60.0, 1e-9);
  EXPECT_NEAR(curve.comm_parallel_gb[9], 10.0 * 50.0 / 60.0, 1e-9);
}

TEST(Baselines, QueueingHasNoFloor) {
  // With many cores, the queueing model lets comm fade towards zero — the
  // behaviour the paper's hypotheses (assured minimum) reject.
  const QueueingBaseline baseline(simple_scalars(5.0, 10.0, 50.0, 40),
                                  simple_scalars(5.0, 10.0, 50.0, 40), 1);
  const model::PredictedCurve curve =
      baseline.predict(topo::NumaId(0), topo::NumaId(0));
  EXPECT_LT(curve.comm_parallel_gb[39], 2.5);
}

TEST(Baselines, LangguthSplitsEqually) {
  const LangguthBaseline baseline(simple_scalars(5.0, 30.0, 50.0, 12),
                                  simple_scalars(3.0, 30.0, 30.0, 12), 1);
  const model::PredictedCurve curve =
      baseline.predict(topo::NumaId(0), topo::NumaId(0));
  // n = 10: demand 50 + 30 > 50: comm gets half the bus (25), compute the
  // other half (25, below its 50 demand).
  EXPECT_DOUBLE_EQ(curve.comm_parallel_gb[9], 25.0);
  EXPECT_DOUBLE_EQ(curve.compute_parallel_gb[9], 25.0);
}

TEST(Baselines, LangguthGivesUnusedShareBack) {
  const LangguthBaseline baseline(simple_scalars(5.0, 8.0, 50.0, 12),
                                  simple_scalars(3.0, 8.0, 30.0, 12), 1);
  const model::PredictedCurve curve =
      baseline.predict(topo::NumaId(0), topo::NumaId(0));
  // n = 12: compute demand 60 > 42 leftover; comm demand 8 < half bus.
  EXPECT_DOUBLE_EQ(curve.comm_parallel_gb[11], 8.0);
  EXPECT_DOUBLE_EQ(curve.compute_parallel_gb[11], 42.0);
}

TEST(Baselines, DisjointPlacementsAreContentionFreeInAllBaselines) {
  const bench::SweepResult sweep = calibration("henri");
  const auto queueing = make_baseline<QueueingBaseline>(sweep);
  const model::PredictedCurve curve =
      queueing.predict(topo::NumaId(0), topo::NumaId(1));
  for (std::size_t i = 0; i < curve.comm_parallel_gb.size(); ++i) {
    EXPECT_DOUBLE_EQ(curve.comm_parallel_gb[i], curve.comm_alone_gb[i]);
  }
}

class BaselineComparison : public testing::TestWithParam<const char*> {};

TEST_P(BaselineComparison, PaperModelBeatsEveryBaseline) {
  bench::SimBackend backend(topo::make_platform(GetParam()));
  const bench::SweepResult calib = bench::run_calibration_sweep(backend);
  const bench::SweepResult full = bench::run_all_placements(backend);

  const PaperModelPredictor paper(model::ContentionModel::from_sweep(calib));
  const double paper_error = evaluate_predictor(paper, full).average;

  const auto perfect = make_baseline<PerfectScalingBaseline>(calib);
  const auto queueing = make_baseline<QueueingBaseline>(calib);
  const auto langguth = make_baseline<LangguthBaseline>(calib);
  EXPECT_LT(paper_error, evaluate_predictor(perfect, full).average)
      << "perfect-scaling";
  EXPECT_LT(paper_error, evaluate_predictor(queueing, full).average)
      << "queueing";
  EXPECT_LT(paper_error, evaluate_predictor(langguth, full).average)
      << "equal-split";
}

INSTANTIATE_TEST_SUITE_P(ContendedPlatforms, BaselineComparison,
                         testing::Values("henri", "henri-subnuma", "dahu",
                                         "pyxis", "occigen"),
                         [](const testing::TestParamInfo<const char*>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(Baselines, EvaluatePredictorNamesThePredictor) {
  const bench::SweepResult sweep = calibration("occigen");
  const auto baseline = make_baseline<PerfectScalingBaseline>(sweep);
  const model::ErrorReport report = evaluate_predictor(baseline, sweep);
  EXPECT_NE(report.platform.find("perfect-scaling"), std::string::npos);
  EXPECT_EQ(report.placements.size(), 2u);
}

TEST(Baselines, MismatchedRegimesRejected) {
  RegimeScalars local = simple_scalars(5.0, 10.0, 50.0, 10);
  RegimeScalars remote = simple_scalars(3.0, 10.0, 30.0, 12);
  EXPECT_THROW(PerfectScalingBaseline(local, remote, 1),
               ContractViolation);
}

}  // namespace
}  // namespace mcm::baseline
