#include "model/metrics.hpp"

#include <gtest/gtest.h>

#include "benchlib/backend.hpp"
#include "benchlib/runner.hpp"
#include "model/model.hpp"
#include "topo/platforms.hpp"
#include "util/contracts.hpp"

namespace mcm::model {
namespace {

TEST(Metrics, SeriesMapeMatchesHandValue) {
  EXPECT_NEAR(series_mape({10.0, 20.0}, {9.0, 22.0}), 10.0, 1e-9);
}

TEST(Metrics, PlacementErrorChecksCoordinates) {
  bench::PlacementCurve measured;
  measured.comp_numa = topo::NumaId(0);
  measured.comm_numa = topo::NumaId(1);
  PredictedCurve predicted;
  predicted.comp_numa = topo::NumaId(1);  // mismatch
  predicted.comm_numa = topo::NumaId(1);
  EXPECT_THROW((void)placement_error(measured, predicted, false),
               ContractViolation);
}

class MetricsOnPlatform : public testing::TestWithParam<const char*> {};

TEST_P(MetricsOnPlatform, EvaluateProducesConsistentAggregates) {
  bench::SimBackend backend(topo::make_platform(GetParam()));
  const auto model = ContentionModel::from_backend(backend);
  const bench::SweepResult sweep = bench::run_all_placements(backend);
  const ErrorReport report = model.evaluate_against(sweep);

  const std::size_t numa = backend.numa_count();
  EXPECT_EQ(report.placements.size(), numa * numa);

  std::size_t samples = 0;
  for (const PlacementError& p : report.placements) {
    EXPECT_GE(p.comm_mape, 0.0);
    EXPECT_GE(p.comp_mape, 0.0);
    if (p.is_sample) {
      ++samples;
      EXPECT_EQ(p.comp_numa, p.comm_numa);
    }
  }
  EXPECT_EQ(samples, 2u);

  // The aggregate is the mean of the two categories' means, weighted by
  // placement counts; `all` must sit between the category values.
  EXPECT_GE(report.comm_all + 1e-9,
            std::min(report.comm_samples, report.comm_non_samples));
  EXPECT_LE(report.comm_all - 1e-9,
            std::max(report.comm_samples, report.comm_non_samples));
  EXPECT_NEAR(report.average, 0.5 * (report.comm_all + report.comp_all),
              1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllPlatforms, MetricsOnPlatform,
                         testing::Values("henri", "henri-subnuma", "dahu",
                                         "diablo", "pyxis", "occigen"),
                         [](const testing::TestParamInfo<const char*>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(Metrics, SampleErrorIsZeroWhenModelReproducesItsOwnCurve) {
  // Evaluate a model against the exact curves its own equations generate:
  // sample placements must have zero error by construction.
  bench::SimBackend backend(topo::make_occigen());
  const auto model = ContentionModel::from_backend(backend);

  bench::SweepResult synthetic;
  synthetic.platform = "synthetic";
  synthetic.numa_per_socket = backend.numa_per_socket();
  for (std::uint32_t comm = 0; comm < backend.numa_count(); ++comm) {
    for (std::uint32_t comp = 0; comp < backend.numa_count(); ++comp) {
      const PredictedCurve p =
          model.predict({topo::NumaId(comp), topo::NumaId(comm)});
      bench::PlacementCurve curve;
      curve.comp_numa = topo::NumaId(comp);
      curve.comm_numa = topo::NumaId(comm);
      for (std::size_t n = 1; n <= model.max_cores(); ++n) {
        bench::BandwidthPoint point;
        point.cores = n;
        point.compute_alone_gb = p.compute_alone_gb[n - 1];
        point.comm_alone_gb = p.comm_alone_gb[n - 1];
        point.compute_parallel_gb = p.compute_parallel_gb[n - 1];
        point.comm_parallel_gb = p.comm_parallel_gb[n - 1];
        curve.points.push_back(point);
      }
      synthetic.curves.push_back(curve);
    }
  }
  const ErrorReport report = model.evaluate_against(synthetic);
  EXPECT_NEAR(report.comm_all, 0.0, 1e-9);
  EXPECT_NEAR(report.comp_all, 0.0, 1e-9);
  EXPECT_NEAR(report.average, 0.0, 1e-9);
}

}  // namespace
}  // namespace mcm::model
