// Property-based tests of the prediction equations over random (but
// internally consistent) parameter sets.
#include <gtest/gtest.h>

#include "model/prediction.hpp"
#include "util/rng.hpp"

namespace mcm::model {
namespace {

ModelParams random_params(std::uint64_t seed) {
  Rng rng(seed);
  ModelParams m;
  m.max_cores = 8 + rng.uniform_below(28);
  m.b_comp_seq = rng.uniform(1.5, 7.0);
  m.b_comm_seq = rng.uniform(5.0, 25.0);
  m.alpha = rng.uniform(0.1, 1.0);
  m.n_seq_max = 3 + rng.uniform_below(m.max_cores - 3);
  m.n_par_max = 1 + rng.uniform_below(m.n_seq_max);
  m.t_par_max =
      static_cast<double>(m.n_par_max) * m.b_comp_seq +
      rng.uniform(0.3, 1.0) * m.b_comm_seq;
  m.t_seq_max = rng.uniform(0.85, 1.1) * m.t_par_max;
  m.delta_l = rng.uniform(0.0, 1.2);
  m.t_par_max2 = std::max(
      m.t_par_max -
          m.delta_l * static_cast<double>(m.n_seq_max - m.n_par_max),
      0.3 * m.t_par_max);
  // Re-derive delta_l so the anchors are consistent, as calibration does.
  if (m.n_seq_max > m.n_par_max) {
    m.delta_l = (m.t_par_max - m.t_par_max2) /
                static_cast<double>(m.n_seq_max - m.n_par_max);
  } else {
    m.delta_l = 0.0;
  }
  m.delta_r = rng.uniform(0.0, 1.2);
  // Keep T(n) positive over the whole domain.
  const double t_end =
      m.t_par_max2 -
      m.delta_r * static_cast<double>(m.max_cores - m.n_seq_max);
  if (t_end < 0.2 * m.t_par_max) {
    m.delta_r = (m.t_par_max2 - 0.2 * m.t_par_max) /
                std::max(1.0,
                         static_cast<double>(m.max_cores - m.n_seq_max));
  }
  m.validate();
  return m;
}

class PredictionProperty : public testing::TestWithParam<std::uint64_t> {};

TEST_P(PredictionProperty, CommStaysWithinFloorAndNominal) {
  const ModelParams m = random_params(GetParam());
  for (std::size_t n = 1; n <= m.max_cores; ++n) {
    const double comm = comm_parallel(m, n);
    EXPECT_GE(comm, m.alpha * m.b_comm_seq - 1e-9) << "n=" << n;
    EXPECT_LE(comm, m.b_comm_seq + 1e-9) << "n=" << n;
  }
}

TEST_P(PredictionProperty, CommIsMonotonicallyNonIncreasing) {
  const ModelParams m = random_params(GetParam());
  double previous = 1e300;
  for (std::size_t n = 1; n <= m.max_cores; ++n) {
    const double comm = comm_parallel(m, n);
    EXPECT_LE(comm, previous + 1e-9) << "n=" << n;
    previous = comm;
  }
}

TEST_P(PredictionProperty, ComputeNeverExceedsItsDemandOrTheBus) {
  const ModelParams m = random_params(GetParam());
  for (std::size_t n = 1; n <= m.max_cores; ++n) {
    const double compute = compute_parallel(m, n);
    EXPECT_GE(compute, -1e-9);
    EXPECT_LE(compute, static_cast<double>(n) * m.b_comp_seq + 1e-9)
        << "n=" << n;
    EXPECT_LE(compute + comm_parallel(m, n),
              std::max(total_bandwidth(m, n),
                       static_cast<double>(n) * m.b_comp_seq +
                           m.b_comm_seq) +
                  1e-9)
        << "n=" << n;
  }
}

TEST_P(PredictionProperty, SaturatedRegionConservesTotalBandwidth) {
  const ModelParams m = random_params(GetParam());
  for (std::size_t n = 1; n <= m.max_cores; ++n) {
    if (fits_without_contention(m, n)) continue;
    const double comm = comm_parallel(m, n);
    const double compute = compute_parallel(m, n);
    if (total_bandwidth(m, n) >= comm) {
      EXPECT_NEAR(compute + comm, total_bandwidth(m, n), 1e-9) << "n=" << n;
    } else {
      // Degenerate tail: T(n) fell below the assured communication floor.
      // The paper's eq. (3) would go negative; the implementation clamps
      // computations at zero and keeps the floor.
      EXPECT_DOUBLE_EQ(compute, 0.0) << "n=" << n;
      EXPECT_NEAR(comm, alpha_of(m, n) * m.b_comm_seq, 1e-9) << "n=" << n;
    }
  }
}

TEST_P(PredictionProperty, AloneComputeBoundsParallelCompute) {
  const ModelParams m = random_params(GetParam());
  for (std::size_t n = 1; n <= m.max_cores; ++n) {
    // Running with communications can never be faster than the solo bound
    // of perfect scaling.
    EXPECT_LE(compute_parallel(m, n),
              static_cast<double>(n) * m.b_comp_seq + 1e-9);
    EXPECT_LE(compute_alone(m, n), m.t_seq_max + 1e-9);
  }
}

TEST_P(PredictionProperty, AlphaInterpolationIsBounded) {
  const ModelParams m = random_params(GetParam());
  for (std::size_t n = 1; n <= m.max_cores; ++n) {
    const double a = alpha_of(m, n);
    EXPECT_GE(a, m.alpha - 1e-9) << "n=" << n;
    EXPECT_LE(a, 1.0 + 1e-9) << "n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PredictionProperty,
                         testing::Range<std::uint64_t>(1, 40));

}  // namespace
}  // namespace mcm::model
