#include "model/calibration.hpp"

#include <gtest/gtest.h>

#include "model/prediction.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace mcm::model {
namespace {

/// Synthesize the benchmark curve the model itself would produce for a
/// parameter set — the inverse of calibration.
bench::PlacementCurve synthesize(const ModelParams& m) {
  bench::PlacementCurve curve;
  curve.comp_numa = topo::NumaId(0);
  curve.comm_numa = topo::NumaId(0);
  for (std::size_t n = 1; n <= m.max_cores; ++n) {
    bench::BandwidthPoint p;
    p.cores = n;
    p.compute_alone_gb = compute_alone(m, n);
    p.comm_alone_gb = m.b_comm_seq;
    p.compute_parallel_gb = compute_parallel(m, n);
    p.comm_parallel_gb = comm_parallel(m, n);
    curve.points.push_back(p);
  }
  return curve;
}

/// A parameter set whose synthesized curve identifies every parameter
/// uniquely (strict peaks, both slopes non-zero, floor reached).
ModelParams identifiable_params() {
  ModelParams m;
  m.b_comp_seq = 5.0;
  m.b_comm_seq = 12.0;
  m.alpha = 0.25;
  m.max_cores = 20;
  m.n_par_max = 14;
  m.t_par_max = 82.0;
  m.n_seq_max = 16;
  m.t_seq_max = 81.0;
  m.t_par_max2 = 80.4;  // delta_l = 0.8 over 2 cores
  m.delta_l = 0.8;
  m.delta_r = 1.1;
  m.validate();
  return m;
}

/// Compare two parameter sets by the predictions they generate.
void expect_equivalent(const ModelParams& a, const ModelParams& b,
                       double tolerance) {
  ASSERT_EQ(a.max_cores, b.max_cores);
  for (std::size_t n = 1; n <= a.max_cores; ++n) {
    EXPECT_NEAR(compute_parallel(a, n), compute_parallel(b, n), tolerance)
        << "compute_parallel n=" << n;
    EXPECT_NEAR(comm_parallel(a, n), comm_parallel(b, n), tolerance)
        << "comm_parallel n=" << n;
    EXPECT_NEAR(compute_alone(a, n), compute_alone(b, n), tolerance)
        << "compute_alone n=" << n;
  }
}

TEST(Calibration, RecoversScalarParametersExactly) {
  const ModelParams original = identifiable_params();
  const ModelParams recovered =
      calibrate(synthesize(original), CalibrationOptions{0});
  EXPECT_DOUBLE_EQ(recovered.b_comp_seq, original.b_comp_seq);
  EXPECT_DOUBLE_EQ(recovered.b_comm_seq, original.b_comm_seq);
  EXPECT_NEAR(recovered.alpha, original.alpha, 1e-9);
  EXPECT_NEAR(recovered.t_par_max, original.t_par_max, 1e-9);
  EXPECT_NEAR(recovered.t_par_max2, original.t_par_max2, 1e-9);
}

TEST(Calibration, RoundTripPredictionsMatch) {
  const ModelParams original = identifiable_params();
  const ModelParams recovered =
      calibrate(synthesize(original), CalibrationOptions{0});
  expect_equivalent(original, recovered, 1e-6);
}

TEST(Calibration, IsAFixedPoint) {
  // Even when the first calibration lands on a different but equivalent
  // parameterization, a second round must not move.
  ModelParams m = identifiable_params();
  m.delta_l = 0.0;  // create a plateau (degenerate identification)
  m.t_par_max2 = m.t_par_max;
  const ModelParams once = calibrate(synthesize(m), CalibrationOptions{0});
  const ModelParams twice =
      calibrate(synthesize(once), CalibrationOptions{0});
  expect_equivalent(once, twice, 1e-6);
}

class CalibrationNoise : public testing::TestWithParam<std::uint64_t> {};

TEST_P(CalibrationNoise, RobustToMeasurementJitter) {
  const ModelParams original = identifiable_params();
  bench::PlacementCurve curve = synthesize(original);
  Rng rng(GetParam());
  for (auto& p : curve.points) {
    p.compute_alone_gb *= 1.0 + 0.005 * rng.normal();
    p.compute_parallel_gb *= 1.0 + 0.005 * rng.normal();
    p.comm_alone_gb *= 1.0 + 0.005 * rng.normal();
    p.comm_parallel_gb *= 1.0 + 0.005 * rng.normal();
  }
  const ModelParams recovered = calibrate(curve);
  // Scalars within a few percent despite the jitter.
  EXPECT_NEAR(recovered.b_comm_seq, original.b_comm_seq,
              original.b_comm_seq * 0.02);
  EXPECT_NEAR(recovered.t_par_max, original.t_par_max,
              original.t_par_max * 0.02);
  EXPECT_NEAR(recovered.alpha, original.alpha, 0.03);
  // And the anchor core counts land on or next to the true ones.
  EXPECT_NEAR(static_cast<double>(recovered.n_seq_max),
              static_cast<double>(original.n_seq_max), 2.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CalibrationNoise,
                         testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

TEST(Calibration, NoContentionCurveYieldsZeroSlopes) {
  // Flat comm + linear compute: a diablo-like platform.
  bench::PlacementCurve curve;
  curve.comp_numa = topo::NumaId(0);
  curve.comm_numa = topo::NumaId(0);
  for (std::size_t n = 1; n <= 16; ++n) {
    bench::BandwidthPoint p;
    p.cores = n;
    p.compute_alone_gb = 3.0 * static_cast<double>(n);
    p.comm_alone_gb = 20.0;
    p.compute_parallel_gb = 3.0 * static_cast<double>(n);
    p.comm_parallel_gb = 20.0;
    curve.points.push_back(p);
  }
  const ModelParams m = calibrate(curve, CalibrationOptions{0});
  EXPECT_DOUBLE_EQ(m.delta_l, 0.0);
  EXPECT_DOUBLE_EQ(m.delta_r, 0.0);
  EXPECT_NEAR(m.alpha, 1.0, 1e-9);
  EXPECT_EQ(m.n_seq_max, 16u);
  // Predictions: perfect overlap at every core count.
  for (std::size_t n = 1; n <= 16; ++n) {
    EXPECT_NEAR(compute_parallel(m, n), 3.0 * static_cast<double>(n), 1e-6);
    EXPECT_NEAR(comm_parallel(m, n), 20.0, 1e-6);
  }
}

TEST(Calibration, RejectsTooShortCurves) {
  bench::PlacementCurve curve;
  curve.points.resize(2);
  curve.points[0].cores = 1;
  curve.points[1].cores = 2;
  EXPECT_THROW((void)calibrate(curve), ContractViolation);
}

TEST(Calibration, RejectsSparseCurves) {
  bench::PlacementCurve curve;
  for (std::size_t n : {1u, 3u, 5u, 7u}) {
    bench::BandwidthPoint p;
    p.cores = n;
    p.compute_alone_gb = 1.0;
    p.comm_alone_gb = 1.0;
    p.compute_parallel_gb = 1.0;
    p.comm_parallel_gb = 1.0;
    curve.points.push_back(p);
  }
  EXPECT_THROW((void)calibrate(curve), ContractViolation);
}

}  // namespace
}  // namespace mcm::model
