#include "model/stability.hpp"

#include <gtest/gtest.h>

#include "topo/platforms.hpp"
#include "util/contracts.hpp"

namespace mcm::model {
namespace {

TEST(Stability, ReportCoversRequestedRuns) {
  const StabilityReport report =
      calibration_stability(topo::make_occigen(), 5);
  EXPECT_EQ(report.platform, "occigen");
  EXPECT_EQ(report.runs, 5u);
  EXPECT_GT(report.b_comp_seq.mean, 0.0);
  EXPECT_GE(report.b_comp_seq.max, report.b_comp_seq.min);
}

TEST(Stability, LowNoisePlatformIsVeryStable) {
  // The paper: "the run-to-run variability is very low". occigen has the
  // lowest noise of the presets.
  const StabilityReport report =
      calibration_stability(topo::make_occigen(), 6);
  EXPECT_LT(report.t_par_max.relative(), 0.01);
  EXPECT_LT(report.b_comm_seq.relative(), 0.01);
  EXPECT_LT(report.worst_comm_prediction_deviation, 0.05);
}

TEST(Stability, NoisyNetworkWobblesMore) {
  const StabilityReport quiet =
      calibration_stability(topo::make_occigen(), 6);
  const StabilityReport noisy =
      calibration_stability(topo::make_pyxis(), 6);
  EXPECT_GT(noisy.b_comm_seq.relative(), quiet.b_comm_seq.relative());
  EXPECT_GT(noisy.worst_comm_prediction_deviation,
            quiet.worst_comm_prediction_deviation);
}

TEST(Stability, AnchorCountsStayOnTheSameCores) {
  // Parameter extraction must not jump between distant core counts under
  // measurement noise.
  const StabilityReport report =
      calibration_stability(topo::make_henri(), 6);
  EXPECT_LE(report.n_seq_max.max - report.n_seq_max.min, 2.0);
  EXPECT_LE(report.n_par_max.max - report.n_par_max.min, 3.0);
}

TEST(Stability, Deterministic) {
  const StabilityReport a = calibration_stability(topo::make_henri(), 4);
  const StabilityReport b = calibration_stability(topo::make_henri(), 4);
  EXPECT_DOUBLE_EQ(a.t_par_max.mean, b.t_par_max.mean);
  EXPECT_DOUBLE_EQ(a.alpha.stddev, b.alpha.stddev);
}

TEST(Stability, RejectsSingleRun) {
  EXPECT_THROW((void)calibration_stability(topo::make_henri(), 1),
               ContractViolation);
}

TEST(Stability, RenderListsAllParameters) {
  const std::string text =
      render_stability(calibration_stability(topo::make_occigen(), 3));
  for (const char* token : {"Nmax_par", "Tmax_seq", "alpha", "relative",
                            "prediction deviation"}) {
    EXPECT_NE(text.find(token), std::string::npos) << token;
  }
}

}  // namespace
}  // namespace mcm::model
