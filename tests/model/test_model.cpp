#include "model/model.hpp"

#include <gtest/gtest.h>

#include "model/prediction.hpp"
#include "model/report.hpp"
#include "topo/platforms.hpp"
#include "util/contracts.hpp"

namespace mcm::model {
namespace {

TEST(ContentionModel, FromBackendCalibratesBothRegimes) {
  bench::SimBackend backend(topo::make_henri());
  const auto model = ContentionModel::from_backend(backend);
  // Local: single core ~5.5 GB/s, network ~12.2 GB/s.
  EXPECT_NEAR(model.local().b_comp_seq, 5.5, 0.2);
  EXPECT_NEAR(model.local().b_comm_seq, 12.2, 0.3);
  // Remote: single core ~3.3 GB/s, network ~11.3 GB/s.
  EXPECT_NEAR(model.remote().b_comp_seq, 3.3, 0.2);
  EXPECT_NEAR(model.remote().b_comm_seq, 12.2 * 0.93, 0.3);
  // Remote saturates earlier and lower.
  EXPECT_LT(model.remote().t_seq_max, model.local().t_seq_max);
  EXPECT_LT(model.remote().n_seq_max, model.local().n_seq_max);
}

TEST(ContentionModel, PlacementStructApi) {
  bench::SimBackend backend(topo::make_henri());
  const auto model = ContentionModel::from_backend(backend);
  const Placement placement{topo::NumaId(0), topo::NumaId(1)};
  const PredictedCurve curve = model.predict(placement);
  EXPECT_EQ(curve.compute_parallel_gb.size(), model.max_cores());
  EXPECT_EQ(curve.comm_parallel_gb.size(), model.max_cores());
  EXPECT_LE(model.recommended_core_count(placement), model.max_cores());
  EXPECT_EQ(placement, (Placement{topo::NumaId(0), topo::NumaId(1)}));
  EXPECT_NE(placement, (Placement{topo::NumaId(1), topo::NumaId(0)}));
}

TEST(ContentionModel, FromSweepRequiresCalibrationPlacements) {
  bench::SweepResult sweep;
  sweep.platform = "x";
  sweep.numa_per_socket = 1;
  // Missing curves entirely.
  EXPECT_THROW((void)ContentionModel::from_sweep(sweep), ContractViolation);
}

TEST(ContentionModel, RecommendedCoresMatchesContentionOnset) {
  bench::SimBackend backend(topo::make_henri());
  const auto model = ContentionModel::from_backend(backend);
  const std::size_t recommended =
      model.recommended_core_count({topo::NumaId(0), topo::NumaId(0)});
  // Below the recommendation: no contention in the model.
  ASSERT_GE(recommended, 1u);
  EXPECT_TRUE(fits_without_contention(model.local(), recommended));
  if (recommended < model.max_cores()) {
    EXPECT_FALSE(fits_without_contention(model.local(), recommended + 1));
  }
  // henri contends near 14-16 cores.
  EXPECT_GE(recommended, 12u);
  EXPECT_LE(recommended, 16u);
}

TEST(ContentionModel, RecommendedCoresOffDiagonalBoundByScaling) {
  bench::SimBackend backend(topo::make_henri());
  const auto model = ContentionModel::from_backend(backend);
  const std::size_t n =
      model.recommended_core_count({topo::NumaId(0), topo::NumaId(1)});
  // Off-diagonal: bound is where solo compute scaling stops being perfect.
  ASSERT_GE(n, 1u);
  EXPECT_NEAR(compute_alone(model.local(), n),
              static_cast<double>(n) * model.local().b_comp_seq, 1e-6);
}

TEST(ContentionModel, BestPlacementSeparatesDataOnContendedPlatform) {
  bench::SimBackend backend(topo::make_henri());
  const auto model = ContentionModel::from_backend(backend);
  const PlacementAdvice advice = model.best_placement(model.max_cores());
  // At full core count the best total bandwidth never co-locates both data
  // blocks on one node on a contended machine.
  EXPECT_NE(advice.comp_numa, advice.comm_numa);
  EXPECT_GT(advice.compute_gb, 0.0);
  EXPECT_GT(advice.comm_gb, 0.0);
  // And it must dominate the worst (diagonal local) placement.
  const PredictedCurve diagonal =
      model.predict({topo::NumaId(0), topo::NumaId(0)});
  const double diagonal_total =
      diagonal.compute_parallel_gb.back() + diagonal.comm_parallel_gb.back();
  EXPECT_GE(advice.compute_gb + advice.comm_gb, diagonal_total - 1e-9);
}

TEST(ContentionModel, BestPlacementValidatesCoreCount) {
  bench::SimBackend backend(topo::make_occigen());
  const auto model = ContentionModel::from_backend(backend);
  EXPECT_THROW((void)model.best_placement(0), ContractViolation);
  EXPECT_THROW((void)model.best_placement(model.max_cores() + 1),
               ContractViolation);
}

TEST(ContentionModel, NumaCountCoversBothSockets) {
  bench::SimBackend backend(topo::make_henri_subnuma());
  const auto model = ContentionModel::from_backend(backend);
  EXPECT_EQ(model.numa_count(), 4u);
  EXPECT_EQ(model.max_cores(), 17u);
}

TEST(Report, ParameterTableRendersBothColumns) {
  bench::SimBackend backend(topo::make_henri());
  const auto model = ContentionModel::from_backend(backend);
  const std::string table = render_parameters(model);
  EXPECT_NE(table.find("local"), std::string::npos);
  EXPECT_NE(table.find("remote"), std::string::npos);
  EXPECT_NE(table.find("Bcomm_seq"), std::string::npos);
}

TEST(Report, ErrorTableHasAverageRow) {
  bench::SimBackend backend(topo::make_occigen());
  const auto model = ContentionModel::from_backend(backend);
  const bench::SweepResult sweep = bench::run_all_placements(backend);
  const ErrorReport report = model.evaluate_against(sweep);
  const std::string table = render_error_table({report, report});
  EXPECT_NE(table.find("Average"), std::string::npos);
  EXPECT_NE(table.find("occigen"), std::string::npos);
  const std::string single = render_error_report(report);
  EXPECT_NE(single.find("samples"), std::string::npos);
}

}  // namespace
}  // namespace mcm::model
