#include "model/placement.hpp"

#include <gtest/gtest.h>

#include "model/prediction.hpp"
#include "util/contracts.hpp"

namespace mcm::model {
namespace {

ModelParams local_params() {
  ModelParams m;
  m.n_par_max = 14;
  m.t_par_max = 88.0;
  m.n_seq_max = 16;
  m.t_seq_max = 88.0;
  m.t_par_max2 = 86.5;
  m.delta_l = 0.75;
  m.delta_r = 0.9;
  m.b_comp_seq = 5.5;
  m.b_comm_seq = 12.0;
  m.alpha = 1.0 / 3.0;
  m.max_cores = 17;
  return m;
}

ModelParams remote_params() {
  ModelParams m;
  m.n_par_max = 8;
  m.t_par_max = 37.0;
  m.n_seq_max = 11;
  m.t_seq_max = 36.0;
  m.t_par_max2 = 35.8;
  m.delta_l = 0.4;
  m.delta_r = 0.45;
  m.b_comp_seq = 3.3;
  m.b_comm_seq = 11.0;
  m.alpha = 0.28;
  m.max_cores = 17;
  return m;
}

/// Two NUMA nodes per socket (#m = 2): nodes 0,1 local, 2,3 remote.
PlacementModel two_per_socket() {
  return PlacementModel(local_params(), remote_params(), 2);
}

TEST(Placement, LocalityPredicate) {
  const PlacementModel pm = two_per_socket();
  EXPECT_TRUE(pm.is_local(topo::NumaId(0)));
  EXPECT_TRUE(pm.is_local(topo::NumaId(1)));
  EXPECT_FALSE(pm.is_local(topo::NumaId(2)));
  EXPECT_FALSE(pm.is_local(topo::NumaId(3)));
}

TEST(Placement, Equation6SameRemoteNodeUsesRemoteModel) {
  const PlacementModel pm = two_per_socket();
  for (std::size_t n = 1; n <= 17; ++n) {
    EXPECT_DOUBLE_EQ(pm.comm_parallel(n, topo::NumaId(2), topo::NumaId(2)),
                     comm_parallel(remote_params(), n))
        << "n=" << n;
  }
}

TEST(Placement, Equation6RemoteCommElsewhereUsesLocalModelWithRemoteNominal) {
  const PlacementModel pm = two_per_socket();
  const ModelParams swapped =
      local_params().with_comm_nominal(remote_params().b_comm_seq);
  for (std::size_t n = 1; n <= 17; ++n) {
    // comp local (0), comm remote (2): middle case of eq. (6).
    EXPECT_DOUBLE_EQ(pm.comm_parallel(n, topo::NumaId(0), topo::NumaId(2)),
                     comm_parallel(swapped, n))
        << "n=" << n;
    // comp on remote node 3, comm on remote node 2 (different nodes):
    // still the middle case.
    EXPECT_DOUBLE_EQ(pm.comm_parallel(n, topo::NumaId(3), topo::NumaId(2)),
                     comm_parallel(swapped, n))
        << "n=" << n;
  }
}

TEST(Placement, Equation6LocalCommUsesLocalModel) {
  const PlacementModel pm = two_per_socket();
  for (std::size_t n = 1; n <= 17; ++n) {
    EXPECT_DOUBLE_EQ(pm.comm_parallel(n, topo::NumaId(2), topo::NumaId(0)),
                     comm_parallel(local_params(), n))
        << "n=" << n;
    EXPECT_DOUBLE_EQ(pm.comm_parallel(n, topo::NumaId(0), topo::NumaId(0)),
                     comm_parallel(local_params(), n))
        << "n=" << n;
  }
}

TEST(Placement, Equation7DiagonalUsesParallelModel) {
  const PlacementModel pm = two_per_socket();
  for (std::size_t n = 1; n <= 17; ++n) {
    EXPECT_DOUBLE_EQ(pm.compute_parallel(n, topo::NumaId(0), topo::NumaId(0)),
                     compute_parallel(local_params(), n));
    EXPECT_DOUBLE_EQ(pm.compute_parallel(n, topo::NumaId(2), topo::NumaId(2)),
                     compute_parallel(remote_params(), n));
  }
}

TEST(Placement, Equation7OffDiagonalUsesSoloModel) {
  const PlacementModel pm = two_per_socket();
  for (std::size_t n = 1; n <= 17; ++n) {
    EXPECT_DOUBLE_EQ(pm.compute_parallel(n, topo::NumaId(0), topo::NumaId(2)),
                     compute_alone(local_params(), n));
    EXPECT_DOUBLE_EQ(pm.compute_parallel(n, topo::NumaId(2), topo::NumaId(1)),
                     compute_alone(remote_params(), n));
    // Different local nodes (only possible with #m >= 2).
    EXPECT_DOUBLE_EQ(pm.compute_parallel(n, topo::NumaId(0), topo::NumaId(1)),
                     compute_alone(local_params(), n));
  }
}

TEST(Placement, AloneSeriesFollowLocality) {
  const PlacementModel pm = two_per_socket();
  EXPECT_DOUBLE_EQ(pm.comm_alone(topo::NumaId(1)), 12.0);
  EXPECT_DOUBLE_EQ(pm.comm_alone(topo::NumaId(3)), 11.0);
  EXPECT_DOUBLE_EQ(pm.compute_alone(4, topo::NumaId(0)), 22.0);
  EXPECT_DOUBLE_EQ(pm.compute_alone(4, topo::NumaId(2)), 13.2);
}

TEST(Placement, PredictProducesDenseCurves) {
  const PlacementModel pm = two_per_socket();
  const PredictedCurve curve =
      pm.predict({topo::NumaId(1), topo::NumaId(2)});
  EXPECT_EQ(curve.comp_numa, topo::NumaId(1));
  EXPECT_EQ(curve.comm_numa, topo::NumaId(2));
  ASSERT_EQ(curve.compute_parallel_gb.size(), 17u);
  ASSERT_EQ(curve.comm_parallel_gb.size(), 17u);
  ASSERT_EQ(curve.compute_alone_gb.size(), 17u);
  ASSERT_EQ(curve.comm_alone_gb.size(), 17u);
  for (std::size_t i = 0; i < 17; ++i) {
    EXPECT_GT(curve.compute_parallel_gb[i], 0.0);
    EXPECT_GT(curve.comm_parallel_gb[i], 0.0);
  }
}

TEST(Placement, SymmetryAcrossEquivalentRemoteNodes) {
  // Nodes 2 and 3 are interchangeable to the model: every prediction must
  // be identical — the symmetry the paper observes in Fig. 4.
  const PlacementModel pm = two_per_socket();
  for (std::size_t n = 1; n <= 17; ++n) {
    EXPECT_DOUBLE_EQ(pm.comm_parallel(n, topo::NumaId(2), topo::NumaId(2)),
                     pm.comm_parallel(n, topo::NumaId(3), topo::NumaId(3)));
    EXPECT_DOUBLE_EQ(pm.compute_parallel(n, topo::NumaId(2), topo::NumaId(3)),
                     pm.compute_parallel(n, topo::NumaId(3), topo::NumaId(2)));
  }
}

TEST(Placement, RequiresMatchingMaxCores) {
  ModelParams remote = remote_params();
  remote.max_cores = 12;
  remote.n_par_max = 8;
  EXPECT_THROW(PlacementModel(local_params(), remote, 2),
               ContractViolation);
}

TEST(Placement, SingleNodePerSocket) {
  const PlacementModel pm(local_params(), remote_params(), 1);
  EXPECT_TRUE(pm.is_local(topo::NumaId(0)));
  EXPECT_FALSE(pm.is_local(topo::NumaId(1)));
  EXPECT_DOUBLE_EQ(pm.comm_parallel(5, topo::NumaId(1), topo::NumaId(1)),
                   comm_parallel(remote_params(), 5));
}

}  // namespace
}  // namespace mcm::model
