#include "model/prediction.hpp"

#include <gtest/gtest.h>

#include "util/contracts.hpp"

namespace mcm::model {
namespace {

/// Hand-built parameter set mirroring a henri-like local regime:
/// single core 5.5 GB/s, solo peak 88 at 16 cores, parallel peak 88 at 14,
/// inflexion to 86.5 at 16, network 12 GB/s with a 1/3 floor.
ModelParams henri_like() {
  ModelParams m;
  m.n_par_max = 14;
  m.t_par_max = 88.0;
  m.n_seq_max = 16;
  m.t_seq_max = 88.0;
  m.t_par_max2 = 86.5;
  m.delta_l = 0.75;
  m.delta_r = 0.9;
  m.b_comp_seq = 5.5;
  m.b_comm_seq = 12.0;
  m.alpha = 1.0 / 3.0;
  m.max_cores = 17;
  m.validate();
  return m;
}

TEST(Prediction, TotalBandwidthIsPiecewiseLinear) {
  const ModelParams m = henri_like();
  // Flat at Tmax_par up to Nmax_par.
  EXPECT_DOUBLE_EQ(total_bandwidth(m, 1), 88.0);
  EXPECT_DOUBLE_EQ(total_bandwidth(m, 14), 88.0);
  // Left slope between Nmax_par and Nmax_seq.
  EXPECT_DOUBLE_EQ(total_bandwidth(m, 15), 88.0 - 0.75);
  EXPECT_DOUBLE_EQ(total_bandwidth(m, 16), 88.0 - 1.5);
  // Right slope anchored at Tmax2_par after Nmax_seq.
  EXPECT_DOUBLE_EQ(total_bandwidth(m, 17), 86.5 - 0.9);
}

TEST(Prediction, RequiredBandwidthIsEquationTwo) {
  const ModelParams m = henri_like();
  EXPECT_DOUBLE_EQ(required_bandwidth(m, 10), 10 * 5.5 + 12.0 / 3.0);
}

TEST(Prediction, FitsWithoutContentionThreshold) {
  const ModelParams m = henri_like();
  // R(n) = 5.5n + 4 < T(n): true up to n = 15 (86.5 < 87.25).
  EXPECT_TRUE(fits_without_contention(m, 1));
  EXPECT_TRUE(fits_without_contention(m, 15));
  EXPECT_FALSE(fits_without_contention(m, 16));
  EXPECT_FALSE(fits_without_contention(m, 17));
}

TEST(Prediction, ComputeScalesPerfectlyBeforeThreshold) {
  const ModelParams m = henri_like();
  for (std::size_t n = 1; n <= 15; ++n) {
    EXPECT_DOUBLE_EQ(compute_parallel(m, n), n * 5.5) << "n=" << n;
  }
}

TEST(Prediction, CommEqualsNominalWhileCoresLeaveRoom) {
  const ModelParams m = henri_like();
  // T(10) - 10*5.5 = 33 > 12 -> comm capped at nominal.
  EXPECT_DOUBLE_EQ(comm_parallel(m, 10), 12.0);
}

TEST(Prediction, CommTakesLeftoverJustBeforeThreshold) {
  const ModelParams m = henri_like();
  // n=14: leftover = 88 - 77 = 11 < 12.
  EXPECT_DOUBLE_EQ(comm_parallel(m, 14), 11.0);
  // n=15: leftover = 87.25 - 82.5 = 4.75.
  EXPECT_DOUBLE_EQ(comm_parallel(m, 15), 4.75);
}

TEST(Prediction, CommDropsToAlphaFloorAtNmaxSeqAndBeyond) {
  const ModelParams m = henri_like();
  EXPECT_DOUBLE_EQ(comm_parallel(m, 16), 4.0);  // alpha * 12
  EXPECT_DOUBLE_EQ(comm_parallel(m, 17), 4.0);
}

TEST(Prediction, AlphaInterpolatesBetweenLastFitAndNmaxSeq) {
  // Widen the gap so the interpolation region is non-trivial.
  ModelParams m = henri_like();
  m.n_par_max = 10;
  m.n_seq_max = 16;
  m.delta_l = 0.2;
  m.t_par_max2 = 88.0 - 0.2 * 6;
  // Last n with R(n) < T(n): R(n)=5.5n+4 vs T: n=15 -> 86.5 vs 87 fits;
  // n=16 -> 92 vs 86.8 does not. So i = 15.
  EXPECT_DOUBLE_EQ(alpha_of(m, 16), m.alpha);
  const double base = (total_bandwidth(m, 15) - 15 * 5.5) / 12.0;
  EXPECT_DOUBLE_EQ(alpha_of(m, 15), base);
  EXPECT_GT(alpha_of(m, 15), m.alpha);
}

TEST(Prediction, ComputeGetsWhatCommLeavesUnderContention) {
  const ModelParams m = henri_like();
  for (std::size_t n : {16u, 17u}) {
    EXPECT_NEAR(compute_parallel(m, n) + comm_parallel(m, n),
                total_bandwidth(m, n), 1e-9)
        << "n=" << n;
  }
}

TEST(Prediction, ComputeAloneFollowsEquationEight) {
  const ModelParams m = henri_like();
  EXPECT_DOUBLE_EQ(compute_alone(m, 4), 22.0);        // n * Bcomp
  EXPECT_DOUBLE_EQ(compute_alone(m, 16), 86.5);       // capped by T(16)
  EXPECT_DOUBLE_EQ(compute_alone(m, 17), 85.6);       // T(17)
}

TEST(Prediction, ComputeAloneNeverExceedsTmaxSeq) {
  ModelParams m = henri_like();
  m.t_par_max = 200.0;  // artificially relax T so Tmax_seq binds
  m.t_par_max2 = 200.0;
  for (std::size_t n = 1; n <= m.max_cores; ++n) {
    EXPECT_LE(compute_alone(m, n), m.t_seq_max + 1e-9);
  }
}

TEST(Prediction, NoContentionPlatformPredictsPerfectOverlap) {
  // diablo-like: memory wide enough that demand never reaches capacity.
  ModelParams m;
  m.n_par_max = 31;
  m.t_par_max = 120.0;
  m.n_seq_max = 31;
  m.t_seq_max = 99.0;
  m.t_par_max2 = 120.0;
  m.delta_l = 0.0;
  m.delta_r = 0.0;
  m.b_comp_seq = 3.1;
  m.b_comm_seq = 22.4;
  m.alpha = 0.9;
  m.max_cores = 31;
  for (std::size_t n = 1; n <= 31; ++n) {
    EXPECT_DOUBLE_EQ(compute_parallel(m, n), n * 3.1);
    EXPECT_DOUBLE_EQ(comm_parallel(m, n), 22.4);
  }
}

TEST(Prediction, MonotonicityCommNeverIncreasesWithCores) {
  const ModelParams m = henri_like();
  double previous = 1e9;
  for (std::size_t n = 1; n <= m.max_cores; ++n) {
    const double comm = comm_parallel(m, n);
    EXPECT_LE(comm, previous + 1e-9) << "n=" << n;
    previous = comm;
  }
}

TEST(Prediction, CommBoundedByNominalAndFloor) {
  const ModelParams m = henri_like();
  for (std::size_t n = 1; n <= m.max_cores; ++n) {
    const double comm = comm_parallel(m, n);
    EXPECT_LE(comm, m.b_comm_seq + 1e-9);
    EXPECT_GE(comm, m.alpha * m.b_comm_seq - 1e-9);
  }
}

TEST(Prediction, RejectsZeroCores) {
  const ModelParams m = henri_like();
  EXPECT_THROW((void)total_bandwidth(m, 0), ContractViolation);
  EXPECT_THROW((void)comm_parallel(m, 0), ContractViolation);
  EXPECT_THROW((void)compute_parallel(m, 0), ContractViolation);
  EXPECT_THROW((void)compute_alone(m, 0), ContractViolation);
}

TEST(Parameters, ValidateCatchesInconsistencies) {
  ModelParams m = henri_like();
  m.alpha = 1.5;
  EXPECT_THROW(m.validate(), ContractViolation);
  m = henri_like();
  m.t_par_max2 = m.t_par_max + 1.0;
  EXPECT_THROW(m.validate(), ContractViolation);
  m = henri_like();
  m.n_par_max = m.max_cores + 5;
  EXPECT_THROW(m.validate(), ContractViolation);
  m = henri_like();
  m.b_comp_seq = 0.0;
  EXPECT_THROW(m.validate(), ContractViolation);
}

TEST(Parameters, WithCommNominalReplacesOnlyBcomm) {
  const ModelParams m = henri_like();
  const ModelParams swapped = m.with_comm_nominal(9.0);
  EXPECT_DOUBLE_EQ(swapped.b_comm_seq, 9.0);
  EXPECT_DOUBLE_EQ(swapped.b_comp_seq, m.b_comp_seq);
  EXPECT_DOUBLE_EQ(swapped.alpha, m.alpha);
  EXPECT_THROW((void)m.with_comm_nominal(0.0), ContractViolation);
}

TEST(Parameters, ToStringMentionsEveryParameter) {
  const std::string text = to_string(henri_like());
  for (const char* token :
       {"Nmax_par", "Nmax_seq", "Tmax2_par", "delta_l", "delta_r",
        "Bcomp_seq", "Bcomm_seq", "alpha"}) {
    EXPECT_NE(text.find(token), std::string::npos) << token;
  }
}

}  // namespace
}  // namespace mcm::model
