#include "model/overlap.hpp"

#include <gtest/gtest.h>

#include "benchlib/backend.hpp"
#include "topo/platforms.hpp"
#include "util/contracts.hpp"
#include "util/units.hpp"

namespace mcm::model {
namespace {

ContentionModel henri_model() {
  bench::SimBackend backend(topo::make_henri());
  return ContentionModel::from_backend(backend);
}

IterationSpec typical_spec() {
  IterationSpec spec;
  spec.compute_bytes = 8.0 * static_cast<double>(kGiB);
  spec.message_bytes = 64.0 * static_cast<double>(kMiB);
  return spec;
}

TEST(Overlap, PlanCoversAllCoreCounts) {
  const ContentionModel model = henri_model();
  const OverlapPlan plan =
      plan_overlap(model, typical_spec(), topo::NumaId(0), topo::NumaId(0));
  ASSERT_EQ(plan.points.size(), model.max_cores());
  for (const OverlapPoint& p : plan.points) {
    EXPECT_GT(p.compute_seconds, 0.0);
    EXPECT_GT(p.comm_seconds, 0.0);
    EXPECT_DOUBLE_EQ(p.iteration_seconds,
                     std::max(p.compute_seconds, p.comm_seconds));
  }
  EXPECT_GE(plan.best_cores, 1u);
  EXPECT_DOUBLE_EQ(plan.best_iteration_seconds,
                   plan.at(plan.best_cores).iteration_seconds);
}

TEST(Overlap, SlowdownIsOneWithoutContention) {
  // Few cores on the local diagonal: model predicts perfect scaling and
  // nominal comm, so the naive estimate matches exactly.
  const ContentionModel model = henri_model();
  const OverlapPlan plan =
      plan_overlap(model, typical_spec(), topo::NumaId(0), topo::NumaId(0));
  EXPECT_NEAR(plan.at(2).contention_slowdown, 1.0, 1e-9);
  EXPECT_NEAR(plan.at(6).contention_slowdown, 1.0, 1e-9);
}

TEST(Overlap, ContentionInflatesFullLoadIterations) {
  const ContentionModel model = henri_model();
  // Communication-heavy iteration: the comm share dominates at high core
  // counts where it is squeezed to the floor.
  IterationSpec spec;
  spec.compute_bytes = 1.0 * static_cast<double>(kGiB);
  spec.message_bytes = 256.0 * static_cast<double>(kMiB);
  const OverlapPlan plan =
      plan_overlap(model, spec, topo::NumaId(0), topo::NumaId(0));
  EXPECT_GT(plan.at(model.max_cores()).contention_slowdown, 1.5);
}

TEST(Overlap, BestCoresIsNotAlwaysAllCores) {
  // With a dominating message, adding cores past the contention point
  // makes iterations *slower*; the planner must notice.
  const ContentionModel model = henri_model();
  IterationSpec spec;
  spec.compute_bytes = 0.5 * static_cast<double>(kGiB);
  spec.message_bytes = 512.0 * static_cast<double>(kMiB);
  const OverlapPlan plan =
      plan_overlap(model, spec, topo::NumaId(0), topo::NumaId(0));
  EXPECT_LT(plan.best_cores, model.max_cores());
  EXPECT_LT(plan.best_iteration_seconds,
            plan.at(model.max_cores()).iteration_seconds);
}

TEST(Overlap, BestPlacementBeatsOrMatchesTheWorst) {
  const ContentionModel model = henri_model();
  const OverlapPlan best =
      plan_overlap_best_placement(model, typical_spec());
  const OverlapPlan diagonal =
      plan_overlap(model, typical_spec(), topo::NumaId(0), topo::NumaId(0));
  EXPECT_LE(best.best_iteration_seconds,
            diagonal.best_iteration_seconds + 1e-12);
}

TEST(Overlap, SpecValidation) {
  const ContentionModel model = henri_model();
  IterationSpec bad;
  bad.compute_bytes = 0.0;
  bad.message_bytes = 1.0;
  EXPECT_THROW(
      (void)plan_overlap(model, bad, topo::NumaId(0), topo::NumaId(0)),
      ContractViolation);
}

TEST(Overlap, AtValidatesRange) {
  const ContentionModel model = henri_model();
  const OverlapPlan plan =
      plan_overlap(model, typical_spec(), topo::NumaId(0), topo::NumaId(1));
  EXPECT_THROW((void)plan.at(0), ContractViolation);
  EXPECT_THROW((void)plan.at(model.max_cores() + 1), ContractViolation);
}

}  // namespace
}  // namespace mcm::model
