#include "net/protocol.hpp"

#include <gtest/gtest.h>

#include "util/contracts.hpp"

namespace mcm::net {
namespace {

TEST(Protocol, ModeSelectionAtThreshold) {
  ProtocolParams params;
  params.eager_threshold = 1024;
  EXPECT_EQ(select_mode(params, 1), ProtocolMode::kEager);
  EXPECT_EQ(select_mode(params, 1024), ProtocolMode::kEager);
  EXPECT_EQ(select_mode(params, 1025), ProtocolMode::kRendezvous);
}

TEST(Protocol, MessageTimeAddsLatencyAndSerialization) {
  ProtocolParams params;
  params.eager_threshold = 1024;
  params.base_latency = Seconds(1e-6);
  params.rendezvous_latency = Seconds(3e-6);
  const Bandwidth bw = Bandwidth::gb_per_s(10.0);
  // Eager: 1 us + 1000/1e10 s.
  EXPECT_NEAR(message_time(params, 1000, bw).value(), 1e-6 + 1e-7, 1e-12);
  // Rendezvous: 4 us + serialization.
  EXPECT_NEAR(message_time(params, 10'000'000, bw).value(),
              4e-6 + 1e-3, 1e-9);
}

TEST(Protocol, EffectiveBandwidthApproachesLinkRateForLargeMessages) {
  ProtocolParams params;
  const Bandwidth bw = Bandwidth::gb_per_s(12.0);
  const Bandwidth small = effective_bandwidth(params, 4 * kKiB, bw);
  const Bandwidth large = effective_bandwidth(params, 64 * kMiB, bw);
  EXPECT_LT(small.gb(), large.gb());
  EXPECT_GT(large.gb(), 11.9);
  EXPECT_LE(large.gb(), 12.0);
}

TEST(Protocol, LatencyDominatesSmallMessages) {
  ProtocolParams params;
  params.base_latency = Seconds(2e-6);
  const Bandwidth bw = Bandwidth::gb_per_s(12.0);
  // 1 KiB at 12 GB/s serializes in ~85 ns << 2 us latency.
  const Bandwidth eff = effective_bandwidth(params, kKiB, bw);
  EXPECT_LT(eff.gb(), 0.6);
}

TEST(Protocol, ValidateRejectsBadParams) {
  ProtocolParams params;
  params.chunk_bytes = 0;
  EXPECT_THROW(params.validate(), ContractViolation);
  params = ProtocolParams{};
  params.base_latency = Seconds(-1.0);
  EXPECT_THROW(params.validate(), ContractViolation);
}

TEST(Protocol, MessageTimeRejectsDegenerateInput) {
  ProtocolParams params;
  EXPECT_THROW((void)message_time(params, 0, Bandwidth::gb_per_s(1.0)),
               ContractViolation);
  EXPECT_THROW((void)message_time(params, 1, Bandwidth{}),
               ContractViolation);
}

TEST(Protocol, ModeNames) {
  EXPECT_STREQ(to_string(ProtocolMode::kEager), "eager");
  EXPECT_STREQ(to_string(ProtocolMode::kRendezvous), "rendezvous");
}

}  // namespace
}  // namespace mcm::net
