#include "net/minimpi.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <thread>
#include <vector>

#include "util/contracts.hpp"

namespace mcm::net {
namespace {

std::vector<std::byte> pattern(std::size_t n, int seed = 0) {
  std::vector<std::byte> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = static_cast<std::byte>((i * 31 + seed) & 0xff);
  }
  return data;
}

TEST(MiniMpi, RankAndSize) {
  ShmWorld world;
  EXPECT_EQ(world.comm(0).rank(), 0);
  EXPECT_EQ(world.comm(1).rank(), 1);
  EXPECT_EQ(world.comm(0).size(), 2);
}

TEST(MiniMpi, EagerSendCompletesWithoutReceiver) {
  ShmWorld world;
  const auto data = pattern(128);
  Request r = world.comm(0).isend(1, 5, data);
  EXPECT_TRUE(r.done());  // buffered
  std::vector<std::byte> sink(128);
  EXPECT_EQ(world.comm(1).recv(0, 5, sink), 128u);
  EXPECT_EQ(sink, data);
}

TEST(MiniMpi, RendezvousCompletesOnlyAtMatch) {
  ProtocolParams params;
  params.eager_threshold = 64;
  ShmWorld world(params);
  const auto data = pattern(4096);
  Request send = world.comm(0).isend(1, 1, data);
  EXPECT_FALSE(send.done());
  std::vector<std::byte> sink(4096);
  Request recv = world.comm(1).irecv(0, 1, sink);
  EXPECT_TRUE(recv.done());
  EXPECT_TRUE(send.done());
  EXPECT_EQ(sink, data);
}

TEST(MiniMpi, RecvBeforeSendMatches) {
  ShmWorld world;
  std::vector<std::byte> sink(64);
  Request recv = world.comm(1).irecv(0, 9, sink);
  EXPECT_FALSE(recv.done());
  const auto data = pattern(64, 3);
  world.comm(0).send(1, 9, data);
  EXPECT_TRUE(recv.done());
  EXPECT_EQ(recv.transferred(), 64u);
  EXPECT_EQ(sink, data);
}

TEST(MiniMpi, TagsAreMatchedNotJustOrder) {
  ShmWorld world;
  const auto a = pattern(32, 1);
  const auto b = pattern(32, 2);
  (void)world.comm(0).isend(1, /*tag=*/1, a);
  (void)world.comm(0).isend(1, /*tag=*/2, b);
  std::vector<std::byte> sink_b(32);
  std::vector<std::byte> sink_a(32);
  EXPECT_EQ(world.comm(1).recv(0, 2, sink_b), 32u);  // tag 2 first
  EXPECT_EQ(world.comm(1).recv(0, 1, sink_a), 32u);
  EXPECT_EQ(sink_a, a);
  EXPECT_EQ(sink_b, b);
}

TEST(MiniMpi, SameTagMessagesDoNotOvertake) {
  ShmWorld world;
  const auto first = pattern(16, 1);
  const auto second = pattern(16, 2);
  (void)world.comm(0).isend(1, 7, first);
  (void)world.comm(0).isend(1, 7, second);
  std::vector<std::byte> sink1(16);
  std::vector<std::byte> sink2(16);
  (void)world.comm(1).recv(0, 7, sink1);
  (void)world.comm(1).recv(0, 7, sink2);
  EXPECT_EQ(sink1, first);
  EXPECT_EQ(sink2, second);
}

TEST(MiniMpi, AnyTagReceivesFirstAvailable) {
  ShmWorld world;
  const auto data = pattern(16, 4);
  (void)world.comm(0).isend(1, 42, data);
  std::vector<std::byte> sink(16);
  Request r = world.comm(1).irecv(0, kAnyTag, sink);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(sink, data);
}

TEST(MiniMpi, ZeroByteMessage) {
  ShmWorld world;
  (void)world.comm(0).isend(1, 0, {});
  std::vector<std::byte> sink(1);
  EXPECT_EQ(world.comm(1).recv(0, 0, sink), 0u);
}

TEST(MiniMpi, LargeTransferAcrossThreads) {
  ShmWorld world;
  const std::size_t n = 8 * kMiB;
  const auto data = pattern(n, 7);
  std::vector<std::byte> sink(n);
  std::thread receiver([&] {
    Request r = world.comm(1).irecv(0, 3, sink);
    world.comm(1).wait(r);
  });
  world.comm(0).send(1, 3, data);
  receiver.join();
  EXPECT_EQ(std::memcmp(sink.data(), data.data(), n), 0);
}

TEST(MiniMpi, PingPongAcrossThreads) {
  ShmWorld world;
  constexpr int kRounds = 50;
  std::thread peer([&] {
    std::vector<std::byte> buf(64);
    for (int i = 0; i < kRounds; ++i) {
      (void)world.comm(1).recv(0, i, buf);
      world.comm(1).send(0, 1000 + i, buf);
    }
  });
  std::vector<std::byte> buf(64);
  for (int i = 0; i < kRounds; ++i) {
    world.comm(0).send(1, i, pattern(64, i));
    (void)world.comm(0).recv(1, 1000 + i, buf);
    EXPECT_EQ(buf, pattern(64, i)) << "round " << i;
  }
  peer.join();
}

TEST(MiniMpi, BarrierSynchronizesBothRanks) {
  ShmWorld world;
  std::atomic<int> stage{0};
  std::thread peer([&] {
    world.comm(1).barrier();
    stage.fetch_add(1);
    world.comm(1).barrier();
  });
  world.comm(0).barrier();
  stage.fetch_add(1);
  world.comm(0).barrier();
  peer.join();
  EXPECT_EQ(stage.load(), 2);
}

TEST(MiniMpi, TestReflectsCompletion) {
  ProtocolParams params;
  params.eager_threshold = 8;
  ShmWorld world(params);
  const auto data = pattern(256);
  Request send = world.comm(0).isend(1, 2, data);
  EXPECT_FALSE(world.comm(0).test(send));
  std::vector<std::byte> sink(256);
  (void)world.comm(1).recv(0, 2, sink);
  EXPECT_TRUE(world.comm(0).test(send));
}

TEST(MiniMpi, InvalidArgumentsThrow) {
  ShmWorld world;
  std::vector<std::byte> buf(8);
  EXPECT_THROW((void)world.comm(0).isend(0, 1, buf), ContractViolation);
  EXPECT_THROW((void)world.comm(0).isend(1, -3, buf), ContractViolation);
  EXPECT_THROW((void)world.comm(0).irecv(0, 1, buf), ContractViolation);
  EXPECT_THROW((void)world.comm(2), ContractViolation);
}

TEST(MiniMpi, TransferredRequiresCompletion) {
  ProtocolParams params;
  params.eager_threshold = 8;
  ShmWorld world(params);
  const auto data = pattern(64);
  Request send = world.comm(0).isend(1, 2, data);
  EXPECT_THROW((void)send.transferred(), ContractViolation);
}

}  // namespace
}  // namespace mcm::net
