#include "net/minimpi.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <numeric>
#include <thread>
#include <vector>

#include "util/contracts.hpp"

namespace mcm::net {
namespace {

std::vector<std::byte> pattern(std::size_t n, int seed = 0) {
  std::vector<std::byte> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = static_cast<std::byte>((i * 31 + seed) & 0xff);
  }
  return data;
}

TEST(MiniMpi, RankAndSize) {
  ShmWorld world;
  EXPECT_EQ(world.comm(0).rank(), 0);
  EXPECT_EQ(world.comm(1).rank(), 1);
  EXPECT_EQ(world.comm(0).size(), 2);
}

TEST(MiniMpi, EagerSendCompletesWithoutReceiver) {
  ShmWorld world;
  const auto data = pattern(128);
  Request r = world.comm(0).isend(1, 5, data);
  EXPECT_TRUE(r.done());  // buffered
  std::vector<std::byte> sink(128);
  EXPECT_EQ(world.comm(1).recv(0, 5, sink), 128u);
  EXPECT_EQ(sink, data);
}

TEST(MiniMpi, RendezvousCompletesOnlyAtMatch) {
  ProtocolParams params;
  params.eager_threshold = 64;
  ShmWorld world(params);
  const auto data = pattern(4096);
  Request send = world.comm(0).isend(1, 1, data);
  EXPECT_FALSE(send.done());
  std::vector<std::byte> sink(4096);
  Request recv = world.comm(1).irecv(0, 1, sink);
  EXPECT_TRUE(recv.done());
  EXPECT_TRUE(send.done());
  EXPECT_EQ(sink, data);
}

TEST(MiniMpi, RecvBeforeSendMatches) {
  ShmWorld world;
  std::vector<std::byte> sink(64);
  Request recv = world.comm(1).irecv(0, 9, sink);
  EXPECT_FALSE(recv.done());
  const auto data = pattern(64, 3);
  world.comm(0).send(1, 9, data);
  EXPECT_TRUE(recv.done());
  EXPECT_EQ(recv.transferred(), 64u);
  EXPECT_EQ(sink, data);
}

TEST(MiniMpi, TagsAreMatchedNotJustOrder) {
  ShmWorld world;
  const auto a = pattern(32, 1);
  const auto b = pattern(32, 2);
  (void)world.comm(0).isend(1, /*tag=*/1, a);
  (void)world.comm(0).isend(1, /*tag=*/2, b);
  std::vector<std::byte> sink_b(32);
  std::vector<std::byte> sink_a(32);
  EXPECT_EQ(world.comm(1).recv(0, 2, sink_b), 32u);  // tag 2 first
  EXPECT_EQ(world.comm(1).recv(0, 1, sink_a), 32u);
  EXPECT_EQ(sink_a, a);
  EXPECT_EQ(sink_b, b);
}

TEST(MiniMpi, SameTagMessagesDoNotOvertake) {
  ShmWorld world;
  const auto first = pattern(16, 1);
  const auto second = pattern(16, 2);
  (void)world.comm(0).isend(1, 7, first);
  (void)world.comm(0).isend(1, 7, second);
  std::vector<std::byte> sink1(16);
  std::vector<std::byte> sink2(16);
  (void)world.comm(1).recv(0, 7, sink1);
  (void)world.comm(1).recv(0, 7, sink2);
  EXPECT_EQ(sink1, first);
  EXPECT_EQ(sink2, second);
}

TEST(MiniMpi, AnyTagReceivesFirstAvailable) {
  ShmWorld world;
  const auto data = pattern(16, 4);
  (void)world.comm(0).isend(1, 42, data);
  std::vector<std::byte> sink(16);
  Request r = world.comm(1).irecv(0, kAnyTag, sink);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(sink, data);
}

TEST(MiniMpi, ZeroByteMessage) {
  ShmWorld world;
  (void)world.comm(0).isend(1, 0, {});
  std::vector<std::byte> sink(1);
  EXPECT_EQ(world.comm(1).recv(0, 0, sink), 0u);
}

TEST(MiniMpiProbe, AnyTagProbeSeesFifoHead) {
  ShmWorld world;
  const auto first = pattern(24, 1);
  const auto second = pattern(48, 2);
  (void)world.comm(0).isend(1, /*tag=*/5, first);
  (void)world.comm(0).isend(1, /*tag=*/6, second);
  // probe(kAnyTag) must report the first queued message, and an any-tag
  // receive must consume that same message — probe and matching agree.
  const auto probed = world.comm(1).probe(0, kAnyTag);
  ASSERT_TRUE(probed.has_value());
  EXPECT_EQ(*probed, 24u);
  std::vector<std::byte> sink(64);
  EXPECT_EQ(world.comm(1).recv(0, kAnyTag, sink), 24u);
  EXPECT_TRUE(std::equal(first.begin(), first.end(), sink.begin()));
  EXPECT_EQ(world.comm(1).probe(0, kAnyTag), std::optional<std::size_t>(48));
}

TEST(MiniMpi, SendrecvAtExactlyEagerThreshold) {
  ProtocolParams params;
  params.eager_threshold = 64;
  ShmWorld world(params);
  // Exactly the threshold stays eager ("strictly larger" goes
  // rendezvous): the send half completes at post, so a one-thread
  // exchange cannot deadlock even without the peer posted yet.
  const auto mine = pattern(64, 1);
  const auto theirs = pattern(64, 2);
  std::vector<std::byte> from_peer(64);
  std::vector<std::byte> from_main(64);
  std::thread peer([&] {
    (void)world.comm(1).sendrecv(0, /*send_tag=*/2, theirs,
                                 /*recv_tag=*/1, from_main);
  });
  const std::size_t got = world.comm(0).sendrecv(1, /*send_tag=*/1, mine,
                                                 /*recv_tag=*/2, from_peer);
  peer.join();
  EXPECT_EQ(got, 64u);
  EXPECT_EQ(from_peer, theirs);
  EXPECT_EQ(from_main, mine);

  // One byte over the threshold switches to rendezvous: the send can no
  // longer complete at post time.
  const auto big = pattern(65, 3);
  Request pending = world.comm(0).isend(1, 9, big);
  EXPECT_FALSE(pending.done());
  std::vector<std::byte> sink(65);
  EXPECT_EQ(world.comm(1).recv(0, 9, sink), 65u);
  EXPECT_TRUE(pending.done());
}

TEST(MiniMpi, ZeroByteMessagesKeepFifoAndProbeSemantics) {
  ShmWorld world;
  (void)world.comm(0).isend(1, 3, {});
  const auto payload = pattern(8, 5);
  (void)world.comm(0).isend(1, 3, payload);
  // A zero-byte message is a real message: probe reports size 0 (not
  // "nothing queued") and same-tag FIFO still applies.
  const auto probed = world.comm(1).probe(0, 3);
  ASSERT_TRUE(probed.has_value());
  EXPECT_EQ(*probed, 0u);
  std::vector<std::byte> sink(8);
  EXPECT_EQ(world.comm(1).recv(0, 3, sink), 0u);
  EXPECT_EQ(world.comm(1).recv(0, 3, sink), 8u);
  EXPECT_EQ(sink, payload);
}

TEST(MiniMpi, LargeTransferAcrossThreads) {
  ShmWorld world;
  const std::size_t n = 8 * kMiB;
  const auto data = pattern(n, 7);
  std::vector<std::byte> sink(n);
  std::thread receiver([&] {
    Request r = world.comm(1).irecv(0, 3, sink);
    world.comm(1).wait(r);
  });
  world.comm(0).send(1, 3, data);
  receiver.join();
  EXPECT_EQ(std::memcmp(sink.data(), data.data(), n), 0);
}

TEST(MiniMpi, PingPongAcrossThreads) {
  ShmWorld world;
  constexpr int kRounds = 50;
  std::thread peer([&] {
    std::vector<std::byte> buf(64);
    for (int i = 0; i < kRounds; ++i) {
      (void)world.comm(1).recv(0, i, buf);
      world.comm(1).send(0, 1000 + i, buf);
    }
  });
  std::vector<std::byte> buf(64);
  for (int i = 0; i < kRounds; ++i) {
    world.comm(0).send(1, i, pattern(64, i));
    (void)world.comm(0).recv(1, 1000 + i, buf);
    EXPECT_EQ(buf, pattern(64, i)) << "round " << i;
  }
  peer.join();
}

TEST(MiniMpi, BarrierSynchronizesBothRanks) {
  ShmWorld world;
  std::atomic<int> stage{0};
  std::thread peer([&] {
    world.comm(1).barrier();
    stage.fetch_add(1);
    world.comm(1).barrier();
  });
  world.comm(0).barrier();
  stage.fetch_add(1);
  world.comm(0).barrier();
  peer.join();
  EXPECT_EQ(stage.load(), 2);
}

TEST(MiniMpi, TestReflectsCompletion) {
  ProtocolParams params;
  params.eager_threshold = 8;
  ShmWorld world(params);
  const auto data = pattern(256);
  Request send = world.comm(0).isend(1, 2, data);
  EXPECT_FALSE(world.comm(0).test(send));
  std::vector<std::byte> sink(256);
  (void)world.comm(1).recv(0, 2, sink);
  EXPECT_TRUE(world.comm(0).test(send));
}

TEST(MiniMpi, InvalidArgumentsThrow) {
  ShmWorld world;
  std::vector<std::byte> buf(8);
  EXPECT_THROW((void)world.comm(0).isend(0, 1, buf), ContractViolation);
  EXPECT_THROW((void)world.comm(0).isend(1, -3, buf), ContractViolation);
  EXPECT_THROW((void)world.comm(0).irecv(0, 1, buf), ContractViolation);
  EXPECT_THROW((void)world.comm(2), ContractViolation);
}

TEST(MiniMpi, TransferredRequiresCompletion) {
  ProtocolParams params;
  params.eager_threshold = 8;
  ShmWorld world(params);
  const auto data = pattern(64);
  Request send = world.comm(0).isend(1, 2, data);
  EXPECT_THROW((void)send.transferred(), ContractViolation);
}

}  // namespace
}  // namespace mcm::net
