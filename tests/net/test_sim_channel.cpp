#include "net/sim_channel.hpp"

#include <gtest/gtest.h>

#include "topo/platforms.hpp"

namespace mcm::net {
namespace {

using topo::NumaId;

TEST(SimChannel, LargeMessageTimeMatchesNicBandwidth) {
  sim::SimMachine machine(topo::make_henri());
  SimChannel channel(machine);
  const std::uint64_t bytes = 64 * kMiB;
  const double expected =
      static_cast<double>(bytes) /
      machine.steady_comm_alone(NumaId(0)).bps();
  EXPECT_NEAR(channel.message_time(bytes, NumaId(0)).value(), expected,
              expected * 0.01);
}

TEST(SimChannel, LoadIncreasesMessageTimeOnSharedNode) {
  sim::SimMachine machine(topo::make_henri());
  SimChannel channel(machine);
  const std::uint64_t bytes = 64 * kMiB;
  const Seconds idle = channel.message_time(bytes, NumaId(0));
  const Seconds loaded = channel.message_time_under_load(
      bytes, machine.max_computing_cores(), NumaId(0), NumaId(0));
  EXPECT_GT(loaded.value(), idle.value() * 2.0);
}

TEST(SimChannel, ZeroCoresMeansIdleTiming) {
  sim::SimMachine machine(topo::make_henri());
  SimChannel channel(machine);
  const std::uint64_t bytes = 4 * kMiB;
  EXPECT_DOUBLE_EQ(
      channel.message_time_under_load(bytes, 0, NumaId(0), NumaId(0)).value(),
      channel.message_time(bytes, NumaId(0)).value());
}

TEST(SimChannel, SmallMessagesAreLatencyBound) {
  sim::SimMachine machine(topo::make_henri());
  ProtocolParams params;
  params.base_latency = Seconds(2e-6);
  SimChannel channel(machine, params);
  // 1 KiB: bandwidth term is negligible, latency dominates — and contention
  // barely moves the needle (the paper's observation that small messages
  // suffer less from memory contention).
  const Seconds idle = channel.message_time(kKiB, NumaId(0));
  const Seconds loaded = channel.message_time_under_load(
      kKiB, machine.max_computing_cores(), NumaId(0), NumaId(0));
  EXPECT_LT(loaded.value(), idle.value() * 1.6);
}

TEST(SimChannel, EffectiveBandwidthGrowsWithMessageSize) {
  sim::SimMachine machine(topo::make_henri());
  SimChannel channel(machine);
  double previous = 0.0;
  for (std::uint64_t bytes : {64 * kKiB, kMiB, 16 * kMiB, 64 * kMiB}) {
    const double bw =
        channel.effective_bandwidth_under_load(bytes, 4, NumaId(0), NumaId(0))
            .gb();
    EXPECT_GT(bw, previous);
    previous = bw;
  }
}

TEST(SimChannel, DiabloLocalityVisibleThroughChannel) {
  sim::SimMachine machine(topo::make_diablo());
  SimChannel channel(machine);
  const std::uint64_t bytes = 64 * kMiB;
  EXPECT_GT(channel.message_time(bytes, NumaId(0)).value(),
            channel.message_time(bytes, NumaId(1)).value() * 1.5);
}

}  // namespace
}  // namespace mcm::net
