// minimpi hardening: probe/sendrecv semantics and randomized two-thread
// stress runs mixing message sizes, tags and protocols.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "net/minimpi.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace mcm::net {
namespace {

std::vector<std::byte> pattern(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::byte> data(n);
  for (auto& b : data) {
    b = static_cast<std::byte>(rng.next_u64() & 0xff);
  }
  return data;
}

TEST(MiniMpiProbe, SeesQueuedMessageWithoutConsuming) {
  ShmWorld world;
  EXPECT_FALSE(world.comm(1).probe(0, 3).has_value());
  const auto data = pattern(96, 1);
  (void)world.comm(0).isend(1, 3, data);
  const auto size = world.comm(1).probe(0, 3);
  ASSERT_TRUE(size.has_value());
  EXPECT_EQ(*size, 96u);
  // Probe again: still there.
  EXPECT_TRUE(world.comm(1).probe(0, kAnyTag).has_value());
  std::vector<std::byte> sink(96);
  EXPECT_EQ(world.comm(1).recv(0, 3, sink), 96u);
  EXPECT_FALSE(world.comm(1).probe(0, 3).has_value());
}

TEST(MiniMpiProbe, MatchesTagsExactly) {
  ShmWorld world;
  const auto data = pattern(8, 2);
  (void)world.comm(0).isend(1, 7, data);
  EXPECT_FALSE(world.comm(1).probe(0, 8).has_value());
  EXPECT_TRUE(world.comm(1).probe(0, 7).has_value());
}

TEST(MiniMpiSendrecv, ExchangesRendezvousSizesWithoutDeadlock) {
  ProtocolParams params;
  params.eager_threshold = 64;  // force rendezvous for both directions
  ShmWorld world(params);
  const std::size_t n = 64 * kKiB;
  const auto out0 = pattern(n, 10);
  const auto out1 = pattern(n, 11);
  std::vector<std::byte> in0(n);
  std::vector<std::byte> in1(n);
  std::thread peer([&] {
    EXPECT_EQ(world.comm(1).sendrecv(0, 1, out1, 2, in1), n);
  });
  EXPECT_EQ(world.comm(0).sendrecv(1, 2, out0, 1, in0), n);
  peer.join();
  EXPECT_EQ(in0, out1);
  EXPECT_EQ(in1, out0);
}

class MiniMpiStress : public testing::TestWithParam<std::uint64_t> {};

TEST_P(MiniMpiStress, RandomizedTrafficDeliversEverythingIntact) {
  ProtocolParams params;
  params.eager_threshold = 512;  // exercise both protocols heavily
  ShmWorld world(params);
  constexpr int kMessages = 120;
  const std::uint64_t seed = GetParam();

  // Sender thread: kMessages with pseudo-random sizes on tag = index.
  std::thread sender([&] {
    Rng rng(seed);
    for (int i = 0; i < kMessages; ++i) {
      const std::size_t size = 1 + rng.uniform_below(8 * kKiB);
      const auto data = pattern(size, seed * 1000 + i);
      world.comm(0).send(1, i, data);
    }
  });

  // Receiver: same size sequence (same generator), verify payloads.
  Rng rng(seed);
  for (int i = 0; i < kMessages; ++i) {
    const std::size_t size = 1 + rng.uniform_below(8 * kKiB);
    std::vector<std::byte> sink(size);
    ASSERT_EQ(world.comm(1).recv(0, i, sink), size) << "message " << i;
    EXPECT_EQ(sink, pattern(size, seed * 1000 + i)) << "message " << i;
  }
  sender.join();
}

TEST_P(MiniMpiStress, OutOfOrderTagsStillMatch) {
  ShmWorld world;
  constexpr int kMessages = 40;
  const std::uint64_t seed = GetParam();

  std::thread sender([&] {
    for (int i = 0; i < kMessages; ++i) {
      world.comm(0).send(1, i, pattern(64, i));
    }
  });

  // Receive in a shuffled order: matching is by tag, not arrival.
  std::vector<int> order(kMessages);
  for (int i = 0; i < kMessages; ++i) order[static_cast<std::size_t>(i)] = i;
  Rng rng(seed);
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.uniform_below(i)]);
  }
  for (int tag : order) {
    std::vector<std::byte> sink(64);
    ASSERT_EQ(world.comm(1).recv(0, tag, sink), 64u);
    EXPECT_EQ(sink, pattern(64, tag)) << "tag " << tag;
  }
  sender.join();
}

INSTANTIATE_TEST_SUITE_P(Seeds, MiniMpiStress,
                         testing::Values(3u, 17u, 1234u, 99991u));

}  // namespace
}  // namespace mcm::net
