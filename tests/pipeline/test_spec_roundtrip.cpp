// Satellite of the service PR: parse ∘ serialize must be the identity on
// every spec document the repo ships — the service protocol embeds specs
// in request frames and re-serializes them, so a lossy round-trip would
// silently change what the service measures.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "pipeline/spec.hpp"

namespace mcm::pipeline {
namespace {

std::vector<std::string> shipped_spec_files() {
  std::vector<std::string> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(MCM_SPEC_DIR)) {
    if (entry.path().extension() == ".json") {
      files.push_back(entry.path().string());
    }
  }
  files.push_back(MCM_SMOKE_SPEC);
  return files;
}

std::string slurp(const std::string& path) {
  std::ifstream file(path);
  std::ostringstream text;
  text << file.rdbuf();
  return text.str();
}

TEST(SpecRoundTrip, ShippedDirectoryIsNotEmpty) {
  EXPECT_GE(shipped_spec_files().size(), 4u)
      << "examples/specs/ plus scripts/scenario_smoke.json";
}

TEST(SpecRoundTrip, ParseSerializeParseIsIdentityOnShippedSpecs) {
  for (const std::string& path : shipped_spec_files()) {
    SCOPED_TRACE(path);
    std::string error;
    const auto spec = ScenarioSpec::from_json(slurp(path), &error);
    ASSERT_TRUE(spec) << error;
    const auto reparsed = ScenarioSpec::from_json(spec->to_json(), &error);
    ASSERT_TRUE(reparsed) << error;
    EXPECT_TRUE(*reparsed == *spec)
        << "parse(serialize(spec)) != spec for " << path;
    EXPECT_EQ(reparsed->fingerprint(), spec->fingerprint());
    EXPECT_EQ(reparsed->to_json(), spec->to_json())
        << "serialization must be stable after one round trip";
  }
}

TEST(SpecRoundTrip, PropertyHoldsAcrossTheFieldSpace) {
  // Enumerate a small lattice of wire-representable specs; every corner
  // must survive the round trip, including explicit placements and
  // injected failures.
  std::vector<ScenarioSpec> corpus;
  for (const PlacementSet placements :
       {PlacementSet::kAll, PlacementSet::kCalibration,
        PlacementSet::kExplicit}) {
    for (const sim::ArbitrationPolicy policy :
         {sim::ArbitrationPolicy::kCpuPriorityWithFloor,
          sim::ArbitrationPolicy::kFairShare}) {
      for (const std::size_t step : {std::size_t(1), std::size_t(3)}) {
        ScenarioSpec spec;
        spec.name = "lattice \"quoted\"";
        spec.platform = "henri";
        spec.policy = policy;
        spec.placements = placements;
        if (placements == PlacementSet::kExplicit) {
          spec.explicit_placements = {{topo::NumaId(0), topo::NumaId(1)},
                                      {topo::NumaId(1), topo::NumaId(1)}};
        }
        spec.max_cores = 6;
        spec.core_step = step;
        spec.repetitions = 2;
        spec.comm_pattern = sim::CommPattern::kBidirectional;
        spec.compute_kernel = sim::ComputeKernel::kCachedFill;
        spec.calibration.smoothing_half_window = 2;
        spec.inject_failures = {
            {{topo::NumaId(0), topo::NumaId(1)}, 2}};
        corpus.push_back(spec);
      }
    }
  }
  for (const ScenarioSpec& spec : corpus) {
    std::string error;
    const auto reparsed = ScenarioSpec::from_json(spec.to_json(), &error);
    ASSERT_TRUE(reparsed) << error << "\n" << spec.to_json();
    EXPECT_TRUE(*reparsed == spec) << spec.to_json();
  }
}

}  // namespace
}  // namespace mcm::pipeline
