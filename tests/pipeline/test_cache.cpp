#include "pipeline/cache.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>

namespace mcm::pipeline {
namespace {

/// A small but fully populated entry with awkward doubles, to exercise
/// exact round-tripping.
CalibrationCache::Entry make_entry() {
  CalibrationCache::Entry entry;
  entry.calibration.platform = "henri";
  entry.calibration.numa_per_socket = 1;
  bench::PlacementCurve local;
  local.comp_numa = topo::NumaId(0);
  local.comm_numa = topo::NumaId(0);
  local.points = {{1, 5.5, 12.25, 5.0, 12.0},
                  {2, 11.0, 12.25, 10.1234567890123456, 11.75}};
  bench::PlacementCurve remote;
  remote.comp_numa = topo::NumaId(1);
  remote.comm_numa = topo::NumaId(1);
  remote.points = {{1, 3.25, 11.5, 3.0, 11.0},
                   {2, 6.5, 11.5, 6.0, 10.0}};
  entry.calibration.curves = {local, remote};
  entry.local.n_par_max = 2;
  entry.local.t_par_max = 87.0 + 1.0 / 3.0;  // not representable exactly
  entry.local.n_seq_max = 2;
  entry.local.t_seq_max = 86.0;
  entry.local.t_par_max2 = 85.5;
  entry.local.delta_l = 1.0e-17;
  entry.local.delta_r = 0.25;
  entry.local.b_comp_seq = 5.5;
  entry.local.b_comm_seq = 12.25;
  entry.local.alpha = 0.32999999999999996;
  entry.local.max_cores = 2;
  entry.remote = entry.local;
  entry.remote.t_par_max = 36.7;
  return entry;
}

void expect_entry_equal(const CalibrationCache::Entry& a,
                        const CalibrationCache::Entry& b) {
  EXPECT_EQ(a.calibration.platform, b.calibration.platform);
  EXPECT_EQ(a.calibration.numa_per_socket, b.calibration.numa_per_socket);
  ASSERT_EQ(a.calibration.curves.size(), b.calibration.curves.size());
  for (std::size_t c = 0; c < a.calibration.curves.size(); ++c) {
    const bench::PlacementCurve& ca = a.calibration.curves[c];
    const bench::PlacementCurve& cb = b.calibration.curves[c];
    EXPECT_EQ(ca.comp_numa, cb.comp_numa);
    EXPECT_EQ(ca.comm_numa, cb.comm_numa);
    ASSERT_EQ(ca.points.size(), cb.points.size());
    for (std::size_t p = 0; p < ca.points.size(); ++p) {
      EXPECT_EQ(ca.points[p].cores, cb.points[p].cores);
      // Bitwise equality: persistence must not round.
      EXPECT_EQ(ca.points[p].compute_alone_gb, cb.points[p].compute_alone_gb);
      EXPECT_EQ(ca.points[p].comm_alone_gb, cb.points[p].comm_alone_gb);
      EXPECT_EQ(ca.points[p].compute_parallel_gb,
                cb.points[p].compute_parallel_gb);
      EXPECT_EQ(ca.points[p].comm_parallel_gb,
                cb.points[p].comm_parallel_gb);
    }
  }
  EXPECT_EQ(a.local.n_par_max, b.local.n_par_max);
  EXPECT_EQ(a.local.t_par_max, b.local.t_par_max);
  EXPECT_EQ(a.local.delta_l, b.local.delta_l);
  EXPECT_EQ(a.local.alpha, b.local.alpha);
  EXPECT_EQ(a.local.max_cores, b.local.max_cores);
  EXPECT_EQ(a.remote.t_par_max, b.remote.t_par_max);
}

TEST(CalibrationCache, FindMissesThenHitsAfterPut) {
  CalibrationCache cache;
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.find("platform=henri"));
  cache.put("platform=henri", make_entry());
  EXPECT_EQ(cache.size(), 1u);
  const auto found = cache.find("platform=henri");
  ASSERT_TRUE(found);
  expect_entry_equal(*found, make_entry());
  EXPECT_FALSE(cache.find("platform=dahu"));
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.find("platform=henri"));
}

TEST(CalibrationCache, PutOverwritesExistingKey) {
  CalibrationCache cache;
  cache.put("k", make_entry());
  CalibrationCache::Entry updated = make_entry();
  updated.local.t_par_max = 99.0;
  cache.put("k", updated);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.find("k")->local.t_par_max, 99.0);
}

TEST(CalibrationCache, JsonRoundTripIsExact) {
  CalibrationCache cache;
  cache.put("platform=henri|policy=cpu-priority-with-floor", make_entry());
  CalibrationCache::Entry other = make_entry();
  other.calibration.platform = "dahu";
  cache.put("platform=dahu|policy=fair-share", other);

  CalibrationCache loaded;
  std::string error;
  ASSERT_TRUE(loaded.load_json(cache.to_json(), &error)) << error;
  EXPECT_EQ(loaded.size(), 2u);
  const auto entry =
      loaded.find("platform=henri|policy=cpu-priority-with-floor");
  ASSERT_TRUE(entry);
  expect_entry_equal(*entry, make_entry());
  // Deterministic serialization: same entries, same document.
  EXPECT_EQ(loaded.to_json(), cache.to_json());
}

TEST(CalibrationCache, MalformedDocumentsLeaveTheCacheUntouched) {
  CalibrationCache cache;
  cache.put("keep", make_entry());
  std::string error;
  EXPECT_FALSE(cache.load_json("not json at all", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(cache.load_json(R"({"schema_version": 99, "entries": {}})",
                               &error));
  EXPECT_FALSE(cache.load_json(R"({"entries": {}})", &error));
  EXPECT_FALSE(cache.load_json(
      R"({"schema_version": 1, "entries": {"x": {"platform": "p"}}})",
      &error));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.find("keep"));
}

TEST(CalibrationCache, LoadJsonMergesIntoExistingEntries) {
  CalibrationCache source;
  source.put("a", make_entry());
  CalibrationCache target;
  CalibrationCache::Entry stale = make_entry();
  stale.local.t_par_max = 1.0;
  target.put("a", stale);
  target.put("b", make_entry());
  ASSERT_TRUE(target.load_json(source.to_json()));
  EXPECT_EQ(target.size(), 2u);
  EXPECT_EQ(target.find("a")->local.t_par_max, make_entry().local.t_par_max);
}

TEST(CalibrationCache, FileRoundTripAndMissingFile) {
  const std::string path =
      testing::TempDir() + "/mcm_calibration_cache_test.json";
  CalibrationCache cache;
  cache.put("platform=henri", make_entry());
  std::string error;
  ASSERT_TRUE(cache.save_file(path, &error)) << error;

  CalibrationCache loaded;
  ASSERT_TRUE(loaded.load_file(path, &error)) << error;
  EXPECT_EQ(loaded.size(), 1u);
  expect_entry_equal(*loaded.find("platform=henri"), make_entry());
  std::remove(path.c_str());

  EXPECT_FALSE(loaded.load_file(path + ".does-not-exist", &error));
  EXPECT_FALSE(error.empty());
}

// ------------------------------------------------ crash-safe persistence

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void spill(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

TEST(CacheFile, TypedStatusRoundTripAndMissing) {
  const std::string path =
      testing::TempDir() + "/mcm_cache_v2_roundtrip.json";
  CalibrationCache cache;
  cache.put("platform=henri", make_entry());
  std::string error;
  ASSERT_TRUE(cache.save_file(path, &error)) << error;
  EXPECT_TRUE(slurp(path).rfind("mcm-cache-v2 ", 0) == 0)
      << "saved files carry the checksummed v2 header";

  CalibrationCache loaded;
  EXPECT_EQ(loaded.load_file_status(path, &error), CacheFileStatus::kOk)
      << error;
  expect_entry_equal(*loaded.find("platform=henri"), make_entry());
  std::remove(path.c_str());
  EXPECT_EQ(loaded.load_file_status(path, &error),
            CacheFileStatus::kMissing);
  // No save_file tmp droppings left behind.
  EXPECT_EQ(slurp(path + ".tmp." + std::to_string(::getpid())), "");
}

TEST(CacheFile, EveryPrefixOfASavedFileIsRejectedAsPartial) {
  // The kill-during-save contract: whatever prefix of the file a crash
  // leaves behind, the loader refuses it and the cache stays unchanged.
  const std::string path =
      testing::TempDir() + "/mcm_cache_v2_prefix.json";
  CalibrationCache cache;
  cache.put("platform=henri", make_entry());
  std::string error;
  ASSERT_TRUE(cache.save_file(path, &error)) << error;
  const std::string full = slurp(path);
  ASSERT_GT(full.size(), 2u);

  for (std::size_t keep = 0; keep < full.size(); ++keep) {
    spill(path, full.substr(0, keep));
    CalibrationCache loaded;
    loaded.put("sentinel", make_entry());
    const CacheFileStatus status = loaded.load_file_status(path, &error);
    EXPECT_NE(status, CacheFileStatus::kOk) << "prefix length " << keep;
    EXPECT_NE(status, CacheFileStatus::kMissing)
        << "prefix length " << keep;
    EXPECT_EQ(loaded.size(), 1u)
        << "a rejected file must leave the cache unchanged (prefix "
        << keep << ")";
    EXPECT_TRUE(loaded.find("sentinel"));
  }
  std::remove(path.c_str());
}

TEST(CacheFile, SingleFlippedPayloadByteFailsTheChecksum) {
  const std::string path =
      testing::TempDir() + "/mcm_cache_v2_bitflip.json";
  CalibrationCache cache;
  cache.put("platform=henri", make_entry());
  std::string error;
  ASSERT_TRUE(cache.save_file(path, &error)) << error;
  std::string bytes = slurp(path);
  const std::size_t payload_start = bytes.find('\n') + 1;
  bytes[payload_start + (bytes.size() - payload_start) / 2] ^= 0x01;
  spill(path, bytes);

  CalibrationCache loaded;
  EXPECT_EQ(loaded.load_file_status(path, &error),
            CacheFileStatus::kChecksumMismatch)
      << error;
  EXPECT_NE(error.find("torn or corrupt"), std::string::npos) << error;
  EXPECT_EQ(loaded.size(), 0u);
  std::remove(path.c_str());
}

TEST(CacheFile, LegacyHeaderlessFilesStillLoad) {
  const std::string path =
      testing::TempDir() + "/mcm_cache_v1_legacy.json";
  CalibrationCache cache;
  cache.put("platform=henri", make_entry());
  spill(path, cache.to_json());  // bare v1 JSON, no header

  CalibrationCache loaded;
  std::string error;
  EXPECT_EQ(loaded.load_file_status(path, &error), CacheFileStatus::kOk)
      << error;
  expect_entry_equal(*loaded.find("platform=henri"), make_entry());
  std::remove(path.c_str());
}

TEST(CacheFile, TrailingGarbageAfterThePayloadIsMalformed) {
  const std::string path =
      testing::TempDir() + "/mcm_cache_v2_trailing.json";
  CalibrationCache cache;
  cache.put("platform=henri", make_entry());
  std::string error;
  ASSERT_TRUE(cache.save_file(path, &error)) << error;
  spill(path, slurp(path) + "extra");

  CalibrationCache loaded;
  EXPECT_EQ(loaded.load_file_status(path, &error),
            CacheFileStatus::kMalformed)
      << error;
  std::remove(path.c_str());
}

TEST(CacheFile, SnapshotCopiesEveryEntry) {
  CalibrationCache cache;
  cache.put("a", make_entry());
  cache.put("b", make_entry());
  const auto entries = cache.snapshot();
  EXPECT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries.count("a"), 1u);
  EXPECT_EQ(entries.count("b"), 1u);
}

}  // namespace
}  // namespace mcm::pipeline
