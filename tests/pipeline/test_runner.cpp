#include "pipeline/runner.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "obs/metrics.hpp"
#include "runtime/thread_pool.hpp"

namespace mcm::pipeline {
namespace {

ScenarioSpec henri_spec(PlacementSet placements = PlacementSet::kAll) {
  ScenarioSpec spec;
  spec.name = "test";
  spec.platform = "henri";
  spec.placements = placements;
  return spec;
}

void expect_identical_sweeps(const bench::SweepResult& a,
                             const bench::SweepResult& b) {
  ASSERT_EQ(a.curves.size(), b.curves.size());
  for (std::size_t i = 0; i < a.curves.size(); ++i) {
    const bench::PlacementCurve& ca = a.curves[i];
    const bench::PlacementCurve& cb = b.curves[i];
    EXPECT_EQ(ca.comp_numa, cb.comp_numa);
    EXPECT_EQ(ca.comm_numa, cb.comm_numa);
    ASSERT_EQ(ca.points.size(), cb.points.size());
    for (std::size_t p = 0; p < ca.points.size(); ++p) {
      // Bit-identical, not approximately equal: the parallel sweep and
      // the cache must not perturb results at all.
      EXPECT_EQ(ca.points[p].cores, cb.points[p].cores);
      EXPECT_EQ(ca.points[p].compute_alone_gb, cb.points[p].compute_alone_gb);
      EXPECT_EQ(ca.points[p].comm_alone_gb, cb.points[p].comm_alone_gb);
      EXPECT_EQ(ca.points[p].compute_parallel_gb,
                cb.points[p].compute_parallel_gb);
      EXPECT_EQ(ca.points[p].comm_parallel_gb,
                cb.points[p].comm_parallel_gb);
    }
  }
}

void expect_identical_errors(const model::ErrorReport& a,
                             const model::ErrorReport& b) {
  EXPECT_EQ(a.comm_samples, b.comm_samples);
  EXPECT_EQ(a.comm_non_samples, b.comm_non_samples);
  EXPECT_EQ(a.comm_all, b.comm_all);
  EXPECT_EQ(a.comp_samples, b.comp_samples);
  EXPECT_EQ(a.comp_non_samples, b.comp_non_samples);
  EXPECT_EQ(a.comp_all, b.comp_all);
  EXPECT_EQ(a.average, b.average);
}

TEST(Runner, ParallelSweepIsBitIdenticalToSerial) {
  RunnerOptions serial_options;
  serial_options.parallelism = 1;
  Runner serial(serial_options);
  Runner parallel;  // lazily creates its pool, one worker per placement
  const ScenarioResult a = serial.run(henri_spec());
  const ScenarioResult b = parallel.run(henri_spec());
  expect_identical_sweeps(a.sweep, b.sweep);
  expect_identical_sweeps(a.calibration, b.calibration);
  expect_identical_errors(a.errors, b.errors);
}

TEST(Runner, SharedThreadPoolWorksToo) {
  runtime::ThreadPool pool(2, /*pin_to_cpus=*/false);
  RunnerOptions options;
  options.pool = &pool;
  Runner shared(options);
  RunnerOptions serial_options;
  serial_options.parallelism = 1;
  Runner serial(serial_options);
  expect_identical_sweeps(shared.run(henri_spec()).sweep,
                          serial.run(henri_spec()).sweep);
}

TEST(Runner, SecondRunHitsTheCalibrationCache) {
  obs::MetricsRegistry metrics;
  RunnerOptions options;
  options.observer.metrics = &metrics;
  Runner runner(options);

  const ScenarioResult cold = runner.run(henri_spec());
  EXPECT_FALSE(cold.cache_hit);
  EXPECT_EQ(metrics.counter("pipeline.cache.hits").value(), 0u);
  EXPECT_EQ(metrics.counter("pipeline.cache.misses").value(), 1u);
  EXPECT_EQ(runner.cache().size(), 1u);

  const ScenarioResult warm = runner.run(henri_spec());
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(metrics.counter("pipeline.cache.hits").value(), 1u);
  EXPECT_EQ(metrics.counter("pipeline.cache.misses").value(), 1u);
  EXPECT_EQ(runner.cache().size(), 1u);

  // A cached calibration must not change any output.
  expect_identical_sweeps(cold.calibration, warm.calibration);
  expect_identical_sweeps(cold.sweep, warm.sweep);
  expect_identical_errors(cold.errors, warm.errors);
  EXPECT_EQ(cold.local.t_par_max, warm.local.t_par_max);
  EXPECT_EQ(cold.remote.alpha, warm.remote.alpha);
}

TEST(Runner, CacheKeysDiscriminateCalibrationInputs) {
  obs::MetricsRegistry metrics;
  RunnerOptions options;
  options.observer.metrics = &metrics;
  Runner runner(options);

  // Calibration-only scenarios keep this cheap; each differing input must
  // miss and add its own entry.
  std::vector<ScenarioSpec> specs;
  specs.push_back(henri_spec(PlacementSet::kCalibration));
  ScenarioSpec other_platform = specs.back();
  other_platform.platform = "occigen";
  specs.push_back(other_platform);
  ScenarioSpec other_policy = specs.front();
  other_policy.policy = sim::ArbitrationPolicy::kFairShare;
  specs.push_back(other_policy);
  ScenarioSpec other_range = specs.front();
  other_range.max_cores = 6;
  specs.push_back(other_range);
  ScenarioSpec other_step = specs.front();
  other_step.core_step = 2;
  specs.push_back(other_step);
  ScenarioSpec other_workload = specs.front();
  other_workload.comm_pattern = sim::CommPattern::kBidirectional;
  other_workload.compute_kernel = sim::ComputeKernel::kCopy;
  specs.push_back(other_workload);

  for (const ScenarioSpec& spec : specs) {
    EXPECT_FALSE(runner.run(spec).cache_hit) << spec.fingerprint();
  }
  EXPECT_EQ(runner.cache().size(), specs.size());
  EXPECT_EQ(metrics.counter("pipeline.cache.misses").value(), specs.size());

  // Re-running every spec hits every key.
  for (const ScenarioSpec& spec : specs) {
    EXPECT_TRUE(runner.run(spec).cache_hit) << spec.fingerprint();
  }
  EXPECT_EQ(metrics.counter("pipeline.cache.hits").value(), specs.size());

  // The placement selection shares the calibration key.
  EXPECT_TRUE(runner.run(henri_spec(PlacementSet::kAll)).cache_hit);
}

TEST(Runner, UncacheableSpecsNeverTouchTheCache) {
  Runner runner;
  ScenarioSpec spec = henri_spec(PlacementSet::kCalibration);
  spec.platform_override = topo::make_platform("henri");
  ASSERT_FALSE(spec.cacheable());
  EXPECT_FALSE(runner.run(spec).cache_hit);
  EXPECT_FALSE(runner.run(spec).cache_hit);
  EXPECT_EQ(runner.cache().size(), 0u);
}

TEST(Runner, PersistedCacheWarmsAFreshRunner) {
  const std::string path =
      testing::TempDir() + "/mcm_runner_cache_test.json";
  Runner cold_runner;
  const ScenarioResult cold =
      cold_runner.run(henri_spec(PlacementSet::kCalibration));
  EXPECT_FALSE(cold.cache_hit);
  std::string error;
  ASSERT_TRUE(cold_runner.cache().save_file(path, &error)) << error;

  Runner warm_runner;
  ASSERT_TRUE(warm_runner.cache().load_file(path, &error)) << error;
  const ScenarioResult warm =
      warm_runner.run(henri_spec(PlacementSet::kCalibration));
  EXPECT_TRUE(warm.cache_hit);
  expect_identical_sweeps(cold.calibration, warm.calibration);
  EXPECT_EQ(cold.local.t_par_max, warm.local.t_par_max);
  EXPECT_EQ(cold.remote.t_par_max, warm.remote.t_par_max);
  std::remove(path.c_str());
}

TEST(Runner, SparseCoreStepScoresAgainstAlignedPredictions) {
  Runner runner;
  ScenarioSpec spec = henri_spec();
  spec.core_step = 3;
  const ScenarioResult result = runner.run(spec);
  ASSERT_EQ(result.predicted.size(), result.sweep.curves.size());
  for (std::size_t i = 0; i < result.sweep.curves.size(); ++i) {
    const bench::PlacementCurve& curve = result.sweep.curves[i];
    // Sparse measurement: strictly fewer points than the dense range, and
    // the prediction is subsampled to exactly the measured core counts.
    EXPECT_LT(curve.points.size(), result.calibration.curves[0].points.size());
    ASSERT_EQ(result.predicted[i].comm_parallel_gb.size(),
              curve.points.size());
    ASSERT_EQ(result.predicted[i].compute_parallel_gb.size(),
              curve.points.size());
  }
  // Calibration stays dense regardless (model::calibrate needs it).
  for (const bench::PlacementCurve& curve : result.calibration.curves) {
    for (std::size_t p = 0; p < curve.points.size(); ++p) {
      EXPECT_EQ(curve.points[p].cores, p + 1);
    }
  }
  EXPECT_GT(result.errors.average, 0.0);
}

TEST(Runner, ExplicitPlacementsMeasureExactlyThoseCurves) {
  Runner runner;
  ScenarioSpec spec = henri_spec(PlacementSet::kExplicit);
  spec.explicit_placements = {{topo::NumaId(1), topo::NumaId(0)}};
  const ScenarioResult result = runner.run(spec);
  ASSERT_EQ(result.sweep.curves.size(), 1u);
  EXPECT_EQ(result.sweep.curves[0].comp_numa, topo::NumaId(1));
  EXPECT_EQ(result.sweep.curves[0].comm_numa, topo::NumaId(0));
  EXPECT_EQ(result.predicted.size(), 1u);
}

TEST(Runner, ResultExposesTheAdvisorModel) {
  Runner runner;
  const ScenarioResult result =
      runner.run(henri_spec(PlacementSet::kCalibration));
  const model::ContentionModel model = result.contention_model();
  EXPECT_EQ(model.max_cores(), result.calibration.curves[0].points.size());
  const model::PlacementAdvice advice =
      model.best_placement(model.max_cores());
  EXPECT_LT(advice.comp_numa.value(), model.numa_count());
  EXPECT_LT(advice.comm_numa.value(), model.numa_count());
}

}  // namespace
}  // namespace mcm::pipeline
