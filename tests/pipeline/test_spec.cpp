#include "pipeline/spec.hpp"

#include <gtest/gtest.h>

#include "topo/platforms.hpp"

namespace mcm::pipeline {
namespace {

TEST(ScenarioSpec, JsonRoundTripPreservesEveryField) {
  ScenarioSpec spec;
  spec.name = "round \"trip\"";
  spec.platform = "henri";
  spec.policy = sim::ArbitrationPolicy::kFairShare;
  spec.placements = PlacementSet::kExplicit;
  spec.explicit_placements = {{topo::NumaId(0), topo::NumaId(1)},
                              {topo::NumaId(1), topo::NumaId(0)}};
  spec.max_cores = 8;
  spec.core_step = 2;
  spec.repetitions = 3;
  spec.comm_pattern = sim::CommPattern::kBidirectional;
  spec.compute_kernel = sim::ComputeKernel::kCopy;
  spec.calibration.smoothing_half_window = 2;

  std::string error;
  const auto parsed = ScenarioSpec::from_json(spec.to_json(), &error);
  ASSERT_TRUE(parsed) << error;
  EXPECT_EQ(parsed->name, spec.name);
  EXPECT_EQ(parsed->platform, spec.platform);
  EXPECT_EQ(parsed->policy, spec.policy);
  EXPECT_EQ(parsed->placements, PlacementSet::kExplicit);
  ASSERT_EQ(parsed->explicit_placements.size(), 2u);
  EXPECT_EQ(parsed->explicit_placements[0].comp, topo::NumaId(0));
  EXPECT_EQ(parsed->explicit_placements[0].comm, topo::NumaId(1));
  EXPECT_EQ(parsed->max_cores, 8u);
  EXPECT_EQ(parsed->core_step, 2u);
  EXPECT_EQ(parsed->repetitions, 3u);
  EXPECT_EQ(parsed->comm_pattern, sim::CommPattern::kBidirectional);
  EXPECT_EQ(parsed->compute_kernel, sim::ComputeKernel::kCopy);
  EXPECT_EQ(parsed->calibration.smoothing_half_window, 2u);
}

TEST(ScenarioSpec, DefaultsSurviveMinimalDocument) {
  std::string error;
  const auto spec = ScenarioSpec::from_json(R"({"platform": "dahu"})",
                                            &error);
  ASSERT_TRUE(spec) << error;
  EXPECT_EQ(spec->platform, "dahu");
  EXPECT_EQ(spec->policy, sim::ArbitrationPolicy::kCpuPriorityWithFloor);
  EXPECT_EQ(spec->placements, PlacementSet::kAll);
  EXPECT_EQ(spec->core_step, 1u);
  EXPECT_EQ(spec->repetitions, 1u);
}

TEST(ScenarioSpec, RejectsUnknownKeys) {
  std::string error;
  EXPECT_FALSE(ScenarioSpec::from_json(
      R"({"platform": "henri", "max_coers": 4})", &error));
  EXPECT_NE(error.find("max_coers"), std::string::npos) << error;
}

TEST(ScenarioSpec, RejectsMissingPlatformAndBadEnums) {
  std::string error;
  EXPECT_FALSE(ScenarioSpec::from_json(R"({"name": "x"})", &error));
  EXPECT_FALSE(ScenarioSpec::from_json(
      R"({"platform": "henri", "policy": "round-robin"})", &error));
  EXPECT_FALSE(ScenarioSpec::from_json(
      R"({"platform": "henri", "comm_pattern": "simplex"})", &error));
  EXPECT_FALSE(ScenarioSpec::from_json(
      R"({"platform": "henri", "compute_kernel": "saxpy"})", &error));
  EXPECT_FALSE(ScenarioSpec::from_json(
      R"({"platform": "henri", "placements": "some"})", &error));
  EXPECT_FALSE(ScenarioSpec::from_json(
      R"({"platform": "henri", "placements": [[0]]})", &error));
  EXPECT_FALSE(ScenarioSpec::from_json(
      R"({"platform": "henri", "core_step": 0})", &error));
}

TEST(ScenarioSpec, FingerprintCoversEveryCalibrationInput) {
  const ScenarioSpec base = [] {
    ScenarioSpec s;
    s.platform = "henri";
    return s;
  }();
  const std::string fp = base.fingerprint();

  ScenarioSpec other = base;
  other.platform = "dahu";
  EXPECT_NE(other.fingerprint(), fp);

  other = base;
  other.policy = sim::ArbitrationPolicy::kFairShare;
  EXPECT_NE(other.fingerprint(), fp);

  other = base;
  other.max_cores = 8;
  EXPECT_NE(other.fingerprint(), fp);

  other = base;
  other.core_step = 2;
  EXPECT_NE(other.fingerprint(), fp);

  other = base;
  other.repetitions = 4;
  EXPECT_NE(other.fingerprint(), fp);

  other = base;
  other.comm_pattern = sim::CommPattern::kBidirectional;
  EXPECT_NE(other.fingerprint(), fp);

  other = base;
  other.compute_kernel = sim::ComputeKernel::kCachedFill;
  EXPECT_NE(other.fingerprint(), fp);

  other = base;
  other.calibration.smoothing_half_window = 3;
  EXPECT_NE(other.fingerprint(), fp);

  other = base;
  other.variant = "ablation";
  EXPECT_NE(other.fingerprint(), fp);

  // The placement selection only affects the measure stage, never the
  // calibration, so it must NOT change the key.
  other = base;
  other.placements = PlacementSet::kCalibration;
  other.name = "different-name";
  EXPECT_EQ(other.fingerprint(), fp);
}

TEST(ScenarioSpec, OverriddenPlatformNeedsVariantToBeCacheable) {
  ScenarioSpec spec;
  spec.platform = "henri";
  EXPECT_TRUE(spec.cacheable());
  spec.platform_override = topo::make_platform("henri");
  EXPECT_FALSE(spec.cacheable());
  spec.variant = "tweaked";
  EXPECT_TRUE(spec.cacheable());
}

TEST(ScenarioSpec, ResolvePrefersTheOverride) {
  ScenarioSpec spec;
  spec.platform = "henri";
  spec.platform_override = topo::make_platform("dahu");
  EXPECT_EQ(spec.resolve_platform().name, "dahu");
  spec.platform_override.reset();
  EXPECT_EQ(spec.resolve_platform().name, "henri");
}

}  // namespace
}  // namespace mcm::pipeline
