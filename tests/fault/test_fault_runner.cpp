// Partial-failure isolation in the pipeline Runner: a poisoned placement
// must not take down the sweep, retries must recover flaky placements,
// and every successful cell must stay bit-identical to a fault-free run.
#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.hpp"
#include "pipeline/runner.hpp"

namespace mcm::pipeline {
namespace {

ScenarioSpec henri_spec() {
  ScenarioSpec spec;
  spec.name = "fault-test";
  spec.platform = "henri";
  spec.placements = PlacementSet::kAll;
  return spec;
}

void expect_identical_curves(const bench::PlacementCurve& a,
                             const bench::PlacementCurve& b) {
  EXPECT_EQ(a.comp_numa, b.comp_numa);
  EXPECT_EQ(a.comm_numa, b.comm_numa);
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t p = 0; p < a.points.size(); ++p) {
    // Bit-identical, not approximately equal: failure isolation must not
    // perturb the surviving cells at all.
    EXPECT_EQ(a.points[p].cores, b.points[p].cores);
    EXPECT_EQ(a.points[p].compute_alone_gb, b.points[p].compute_alone_gb);
    EXPECT_EQ(a.points[p].comm_alone_gb, b.points[p].comm_alone_gb);
    EXPECT_EQ(a.points[p].compute_parallel_gb,
              b.points[p].compute_parallel_gb);
    EXPECT_EQ(a.points[p].comm_parallel_gb, b.points[p].comm_parallel_gb);
  }
}

TEST(FaultRunner, PoisonedPlacementYieldsPartialNotAbort) {
  const model::Placement poisoned{topo::NumaId(0), topo::NumaId(1)};

  obs::MetricsRegistry metrics;
  RunnerOptions options;
  options.observer.metrics = &metrics;
  Runner runner(options);

  ScenarioSpec spec = henri_spec();
  spec.inject_failures.push_back(InjectedFailure{poisoned, 0});
  const ScenarioResult faulty = runner.run(spec);

  Runner clean_runner;
  const ScenarioResult clean = clean_runner.run(henri_spec());

  EXPECT_EQ(faulty.status, RunStatus::kPartial);
  EXPECT_STREQ(to_string(faulty.status), "partial");
  ASSERT_EQ(faulty.failures.size(), 1u);
  EXPECT_EQ(faulty.failures[0].placement, poisoned);
  EXPECT_EQ(faulty.failures[0].attempts, 1u);
  EXPECT_NE(faulty.failures[0].error.find("injected failure"),
            std::string::npos);
  EXPECT_EQ(metrics.counter("pipeline.placements_failed").value(), 1u);

  // The failed cell keeps its slot (right ids, no points); every other
  // cell is bit-identical to the fault-free sweep.
  ASSERT_EQ(faulty.sweep.curves.size(), clean.sweep.curves.size());
  for (std::size_t i = 0; i < faulty.sweep.curves.size(); ++i) {
    const bench::PlacementCurve& cell = faulty.sweep.curves[i];
    if (model::Placement{cell.comp_numa, cell.comm_numa} == poisoned) {
      EXPECT_TRUE(cell.points.empty());
      continue;
    }
    expect_identical_curves(cell, clean.sweep.curves[i]);
  }
  // The score covers the surviving cells, so it is still a real number.
  EXPECT_GT(faulty.errors.average, 0.0);
}

TEST(FaultRunner, EveryPlacementFailingMarksRunFailed) {
  ScenarioSpec spec = henri_spec();
  spec.placements = PlacementSet::kExplicit;
  spec.explicit_placements = {
      model::Placement{topo::NumaId(0), topo::NumaId(0)},
      model::Placement{topo::NumaId(0), topo::NumaId(1)}};
  for (const model::Placement& placement : spec.explicit_placements) {
    spec.inject_failures.push_back(InjectedFailure{placement, 0});
  }
  Runner runner;
  const ScenarioResult result = runner.run(spec);
  EXPECT_EQ(result.status, RunStatus::kFailed);
  EXPECT_EQ(result.failures.size(), 2u);
  // Nothing measured, nothing scored.
  EXPECT_EQ(result.errors.average, 0.0);
  // Calibration is never poisoned, so the model itself still exists.
  EXPECT_GT(result.local.t_par_max, 0.0);
}

TEST(FaultRunner, MaxRetriesRecoversAFlakyPlacement) {
  const model::Placement flaky{topo::NumaId(1), topo::NumaId(0)};
  ScenarioSpec spec = henri_spec();
  spec.inject_failures.push_back(InjectedFailure{flaky, /*attempts=*/2});

  RunnerOptions options;
  options.max_retries = 2;
  Runner runner(options);
  const ScenarioResult recovered = runner.run(spec);
  EXPECT_EQ(recovered.status, RunStatus::kOk);
  EXPECT_TRUE(recovered.failures.empty());

  // Retried measurements are deterministic: the recovered sweep matches
  // a fault-free one bit for bit.
  Runner clean_runner;
  const ScenarioResult clean = clean_runner.run(henri_spec());
  ASSERT_EQ(recovered.sweep.curves.size(), clean.sweep.curves.size());
  for (std::size_t i = 0; i < clean.sweep.curves.size(); ++i) {
    expect_identical_curves(recovered.sweep.curves[i],
                            clean.sweep.curves[i]);
  }
  EXPECT_EQ(recovered.errors.average, clean.errors.average);
}

TEST(FaultRunner, TooFewRetriesStillFailsTheFlakyPlacement) {
  const model::Placement flaky{topo::NumaId(1), topo::NumaId(0)};
  ScenarioSpec spec = henri_spec();
  spec.inject_failures.push_back(InjectedFailure{flaky, /*attempts=*/3});

  RunnerOptions options;
  options.max_retries = 1;
  Runner runner(options);
  const ScenarioResult result = runner.run(spec);
  EXPECT_EQ(result.status, RunStatus::kPartial);
  ASSERT_EQ(result.failures.size(), 1u);
  EXPECT_EQ(result.failures[0].attempts, 2u);  // 1 + max_retries
}

TEST(FaultRunner, FingerprintIgnoresInjectedFailures) {
  ScenarioSpec spec = henri_spec();
  const std::string clean_fingerprint = spec.fingerprint();
  spec.inject_failures.push_back(
      InjectedFailure{model::Placement{topo::NumaId(0), topo::NumaId(1)}, 0});
  // Calibration sweeps are never poisoned, so a poisoned run may share
  // the cache entry of a clean one.
  EXPECT_EQ(spec.fingerprint(), clean_fingerprint);
}

TEST(FaultRunner, InjectFailuresSurviveJsonRoundTrip) {
  ScenarioSpec spec = henri_spec();
  spec.inject_failures.push_back(
      InjectedFailure{model::Placement{topo::NumaId(0), topo::NumaId(1)}, 0});
  spec.inject_failures.push_back(
      InjectedFailure{model::Placement{topo::NumaId(1), topo::NumaId(1)}, 3});

  std::string error;
  const auto parsed = ScenarioSpec::from_json(spec.to_json(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_EQ(parsed->inject_failures.size(), 2u);
  EXPECT_EQ(parsed->inject_failures[0].placement,
            spec.inject_failures[0].placement);
  EXPECT_EQ(parsed->inject_failures[0].failing_attempts, 0u);
  EXPECT_EQ(parsed->inject_failures[1].placement,
            spec.inject_failures[1].placement);
  EXPECT_EQ(parsed->inject_failures[1].failing_attempts, 3u);
}

TEST(FaultRunner, RejectsMalformedInjectFailures) {
  std::string error;
  EXPECT_FALSE(ScenarioSpec::from_json(
                   R"({"platform": "henri", "inject_failures": [[0]]})",
                   &error)
                   .has_value());
  EXPECT_NE(error.find("inject_failures"), std::string::npos);
  EXPECT_FALSE(ScenarioSpec::from_json(
                   R"({"platform": "henri", "inject_failures": 3})", &error)
                   .has_value());
  EXPECT_FALSE(
      ScenarioSpec::from_json(
          R"({"platform": "henri", "inject_failures": [[0, -1]]})", &error)
          .has_value());
}

}  // namespace
}  // namespace mcm::pipeline
