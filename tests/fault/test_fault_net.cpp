// Fault-injection tests of the mcm::net transport: delays must be
// survivable with retry/backoff, stalls must surface as typed timeouts
// instead of hangs, drops must redeliver in FIFO order, and all of it
// must be deterministic under a fixed seed.
#include <gtest/gtest.h>

#include <cstddef>
#include <thread>
#include <vector>

#include "net/fault.hpp"
#include "net/minimpi.hpp"
#include "obs/metrics.hpp"
#include "obs/observer.hpp"
#include "util/contracts.hpp"

namespace mcm::net {
namespace {

std::vector<std::byte> pattern(std::size_t n, int seed = 0) {
  std::vector<std::byte> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = static_cast<std::byte>((i * 31 + seed) & 0xff);
  }
  return data;
}

TEST(FaultPlan, ValidatesProbabilitiesAndDurations) {
  FaultPlan plan;
  EXPECT_FALSE(plan.armed());
  plan.delay_probability = 1.5;
  EXPECT_THROW(plan.validate(), ContractViolation);
  plan.delay_probability = 0.5;
  plan.delay = Seconds(-1.0);
  EXPECT_THROW(plan.validate(), ContractViolation);
  plan.delay = Seconds(0.01);
  plan.validate();
  EXPECT_TRUE(plan.armed());
}

TEST(RetryPolicy, ValidatesTimeoutAndBackoff) {
  RetryPolicy policy;
  policy.timeout = Seconds(0.0);
  EXPECT_THROW(policy.validate(), ContractViolation);
  policy.timeout = Seconds(0.01);
  policy.backoff = 0.5;
  EXPECT_THROW(policy.validate(), ContractViolation);
  policy.backoff = 1.0;
  policy.validate();
}

TEST(FaultNet, InjectedDelayIsSurvivedByRetryWithBackoff) {
  obs::MetricsRegistry metrics;
  obs::Observer observer;
  observer.metrics = &metrics;
  ShmWorld world;
  world.attach_observer(observer);

  FaultPlan plan;
  plan.seed = 7;
  plan.delay_probability = 1.0;
  plan.delay = Seconds(0.03);
  world.inject_faults(plan);

  const auto data = pattern(64, 1);
  (void)world.comm(0).isend(1, 4, data);
  EXPECT_EQ(metrics.counter("net.faults.injected").value(), 1u);

  // First attempts (5 ms, 10 ms) expire before the 30 ms delay; backoff
  // grows the deadline until the message becomes deliverable.
  RetryPolicy policy;
  policy.timeout = Seconds(0.005);
  policy.max_retries = 10;
  policy.backoff = 2.0;
  std::vector<std::byte> sink(64);
  EXPECT_EQ(world.comm(1).recv(0, 4, sink, policy), 64u);
  EXPECT_EQ(sink, data);
  EXPECT_GE(metrics.counter("net.retries").value(), 1u);
  EXPECT_EQ(metrics.counter("net.timeouts").value(), 0u);
}

TEST(FaultNet, InducedStallHitsWaitForDeadlineWithTypedError) {
  obs::MetricsRegistry metrics;
  obs::Observer observer;
  observer.metrics = &metrics;
  ProtocolParams params;
  params.eager_threshold = 8;  // 64-byte message goes rendezvous
  ShmWorld world(params);
  world.attach_observer(observer);

  FaultPlan plan;
  plan.seed = 1;
  plan.stall_every = 1;
  world.inject_faults(plan);

  const auto data = pattern(64, 2);
  Request send = world.comm(0).isend(1, 9, data);
  std::vector<std::byte> sink(64);
  Request recv = world.comm(1).irecv(0, 9, sink);

  try {
    world.comm(1).wait_for(recv, Seconds(0.02));
    FAIL() << "expected Error(kTimeout)";
  } catch (const Error& error) {
    EXPECT_EQ(error.kind(), ErrorKind::kTimeout);
  }
  EXPECT_FALSE(send.done());
  EXPECT_FALSE(recv.done());
  EXPECT_EQ(metrics.counter("net.faults.injected").value(), 1u);
  EXPECT_EQ(metrics.counter("net.timeouts").value(), 1u);
}

TEST(FaultNet, RecvRetryExhaustionCountsOneTimeout) {
  obs::MetricsRegistry metrics;
  obs::Observer observer;
  observer.metrics = &metrics;
  ProtocolParams params;
  params.eager_threshold = 8;
  ShmWorld world(params);
  world.attach_observer(observer);

  FaultPlan plan;
  plan.seed = 1;
  plan.stall_every = 1;
  world.inject_faults(plan);

  const auto data = pattern(32, 3);
  (void)world.comm(0).isend(1, 2, data);

  RetryPolicy policy;
  policy.timeout = Seconds(0.002);
  policy.max_retries = 2;
  std::vector<std::byte> sink(32);
  try {
    (void)world.comm(1).recv(0, 2, sink, policy);
    FAIL() << "expected Error(kTimeout)";
  } catch (const Error& error) {
    EXPECT_EQ(error.kind(), ErrorKind::kTimeout);
  }
  // One net.retries per extra attempt; net.timeouts only on the final
  // give-up, however many attempts preceded it.
  EXPECT_EQ(metrics.counter("net.retries").value(), 2u);
  EXPECT_EQ(metrics.counter("net.timeouts").value(), 1u);
}

TEST(FaultNet, DroppedMessagesAreRedeliveredInFifoOrder) {
  obs::MetricsRegistry metrics;
  obs::Observer observer;
  observer.metrics = &metrics;
  ShmWorld world;
  world.attach_observer(observer);

  FaultPlan plan;
  plan.seed = 3;
  plan.drop_probability = 1.0;
  plan.redelivery_delay = Seconds(0.01);
  world.inject_faults(plan);

  const auto first = pattern(16, 1);
  const auto second = pattern(16, 2);
  (void)world.comm(0).isend(1, 7, first);
  (void)world.comm(0).isend(1, 7, second);
  EXPECT_EQ(metrics.counter("net.faults.injected").value(), 2u);
  // probe must not see an in-flight (dropped, not yet redelivered)
  // message.
  EXPECT_FALSE(world.comm(1).probe(0, 7).has_value());

  std::vector<std::byte> sink1(16);
  std::vector<std::byte> sink2(16);
  (void)world.comm(1).recv(0, 7, sink1);
  (void)world.comm(1).recv(0, 7, sink2);
  EXPECT_EQ(sink1, first);
  EXPECT_EQ(sink2, second);
}

TEST(FaultNet, DelayedHeadOfLineBlocksLaterSameTagMessages) {
  ShmWorld world;
  FaultPlan plan;
  plan.seed = 11;
  plan.delay_probability = 0.5;
  plan.delay = Seconds(0.015);
  world.inject_faults(plan);

  // Whatever subset of these gets delayed, same-tag delivery order must
  // match posting order — a delayed head of line is never overtaken.
  constexpr int kMessages = 8;
  for (int i = 0; i < kMessages; ++i) {
    (void)world.comm(0).isend(1, 5, pattern(16, i));
  }
  for (int i = 0; i < kMessages; ++i) {
    std::vector<std::byte> sink(16);
    (void)world.comm(1).recv(0, 5, sink);
    EXPECT_EQ(sink, pattern(16, i)) << "message " << i;
  }
}

TEST(FaultNet, DelayedPostWakesAnAlreadyBlockedWaiter) {
  // Lost-wakeup regression: the receiver blocks in a no-deadline recv()
  // (next-ripe = never) BEFORE the sender posts a delayed message. The
  // post must wake the waiter so it re-derives a finite wake-up time and
  // drives delivery once the delay elapses; without that notify this
  // test hangs forever.
  ShmWorld world;
  FaultPlan plan;
  plan.seed = 9;
  plan.delay_probability = 1.0;
  plan.delay = Seconds(0.02);
  world.inject_faults(plan);

  const auto data = pattern(32, 8);
  std::thread sender([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    (void)world.comm(0).isend(1, 6, data);
  });
  std::vector<std::byte> sink(32);
  EXPECT_EQ(world.comm(1).recv(0, 6, sink), 32u);
  EXPECT_EQ(sink, data);
  sender.join();
}

TEST(FaultNet, LatePostedRecvWakesABlockedRendezvousSender) {
  // Mirror of the lost-wakeup test on the irecv side: the sender blocks
  // in a no-deadline wait() on a delayed rendezvous send with no
  // matching receive (next-ripe = never). Posting the receive must wake
  // it so it picks up the now-finite ripe time and drives delivery.
  ProtocolParams params;
  params.eager_threshold = 8;  // 64-byte message goes rendezvous
  ShmWorld world(params);
  FaultPlan plan;
  plan.seed = 5;
  plan.delay_probability = 1.0;
  plan.delay = Seconds(0.02);
  world.inject_faults(plan);

  const auto data = pattern(64, 9);
  std::vector<std::byte> sink(64);
  Request recv;
  std::thread receiver([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    recv = world.comm(1).irecv(0, 4, sink);
  });
  Request send = world.comm(0).isend(1, 4, data);
  world.comm(0).wait(send);
  receiver.join();
  world.comm(1).wait(recv);
  EXPECT_EQ(recv.transferred(), 64u);
  EXPECT_EQ(sink, data);
}

TEST(FaultNet, SameSeedInjectsIdenticalFaultSequence) {
  const auto count_faults = [](std::uint64_t seed) {
    obs::MetricsRegistry metrics;
    obs::Observer observer;
    observer.metrics = &metrics;
    ShmWorld world;
    world.attach_observer(observer);
    FaultPlan plan;
    plan.seed = seed;
    plan.delay_probability = 0.4;
    plan.delay = Seconds(0.002);
    world.inject_faults(plan);
    for (int i = 0; i < 32; ++i) {
      (void)world.comm(0).isend(1, i, pattern(8, i));
    }
    for (int i = 0; i < 32; ++i) {
      std::vector<std::byte> sink(8);
      (void)world.comm(1).recv(0, i, sink);
    }
    return metrics.counter("net.faults.injected").value();
  };
  const std::uint64_t first = count_faults(42);
  EXPECT_GE(first, 1u);
  EXPECT_LT(first, 32u);
  EXPECT_EQ(first, count_faults(42));
}

TEST(FaultNet, PeerGoneTurnsWaitIntoTypedError) {
  ProtocolParams params;
  params.eager_threshold = 8;
  ShmWorld world(params);
  const auto data = pattern(64, 4);
  Request send = world.comm(0).isend(1, 1, data);  // rendezvous, pending
  world.mark_peer_gone(1);
  try {
    world.comm(0).wait(send);
    FAIL() << "expected Error(kPeerGone)";
  } catch (const Error& error) {
    EXPECT_EQ(error.kind(), ErrorKind::kPeerGone);
  }
}

TEST(FaultNet, PeerGoneWakesABlockedWaiter) {
  ProtocolParams params;
  params.eager_threshold = 8;
  ShmWorld world(params);
  const auto data = pattern(64, 5);
  Request send = world.comm(0).isend(1, 1, data);
  std::thread reaper([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    world.mark_peer_gone(1);
  });
  EXPECT_THROW(world.comm(0).wait(send), Error);
  reaper.join();
}

TEST(FaultNet, UnarmedPlanKeepsImmediateDelivery) {
  obs::MetricsRegistry metrics;
  obs::Observer observer;
  observer.metrics = &metrics;
  ShmWorld world;
  world.attach_observer(observer);
  world.inject_faults(FaultPlan{});  // armed() == false: fast paths stay

  const auto data = pattern(32, 6);
  (void)world.comm(0).isend(1, 3, data);
  std::vector<std::byte> sink(32);
  EXPECT_EQ(world.comm(1).recv(0, 3, sink), 32u);
  EXPECT_EQ(sink, data);
  EXPECT_EQ(metrics.counter("net.faults.injected").value(), 0u);
}

TEST(FaultNet, WaitForReturnsPromptlyWhenAlreadyDone) {
  ShmWorld world;
  const auto data = pattern(16, 7);
  Request send = world.comm(0).isend(1, 1, data);  // eager: done at post
  world.comm(0).wait_for(send, Seconds(0.001));
  EXPECT_EQ(send.transferred(), 16u);
}

}  // namespace
}  // namespace mcm::net
