#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/observer.hpp"
#include "obs/sampler.hpp"
#include "sim/engine.hpp"
#include "topo/platforms.hpp"
#include "util/units.hpp"

namespace mcm::obs {
namespace {

TEST(TimelineSampler, KeepsEveryUnconditionalSample) {
  MetricsRegistry registry;
  TimelineSampler sampler(registry, 8, 1000.0);
  registry.counter("c").add(1);
  sampler.sample(0.0);
  registry.counter("c").add(1);
  sampler.sample(1.0);  // within the period — sample() ignores cadence
  EXPECT_EQ(sampler.size(), 2u);
  EXPECT_EQ(sampler.total_samples(), 2u);
  const std::vector<double> series = sampler.counter_series("c");
  ASSERT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series[0], 1.0);
  EXPECT_DOUBLE_EQ(series[1], 2.0);
}

TEST(TimelineSampler, MaybeSampleHonoursCadence) {
  MetricsRegistry registry;
  TimelineSampler sampler(registry, 64, 100.0);
  EXPECT_TRUE(sampler.maybe_sample(0.0));    // first offer always kept
  EXPECT_FALSE(sampler.maybe_sample(50.0));  // < period since last kept
  EXPECT_FALSE(sampler.maybe_sample(99.9));
  EXPECT_TRUE(sampler.maybe_sample(100.0));  // exactly one period
  EXPECT_FALSE(sampler.maybe_sample(150.0));
  EXPECT_TRUE(sampler.maybe_sample(1000.0));
  EXPECT_EQ(sampler.size(), 3u);
  const std::vector<double> times = sampler.times_us();
  EXPECT_EQ(times, (std::vector<double>{0.0, 100.0, 1000.0}));
}

TEST(TimelineSampler, ZeroPeriodKeepsEveryOffer) {
  MetricsRegistry registry;
  TimelineSampler sampler(registry, 16, 0.0);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(sampler.maybe_sample(static_cast<double>(i)));
  }
  EXPECT_EQ(sampler.size(), 5u);
}

TEST(TimelineSampler, RingWrapsAroundOldestFirst) {
  MetricsRegistry registry;
  TimelineSampler sampler(registry, 4, 0.0);
  for (int i = 0; i < 10; ++i) {
    registry.gauge("g").set(static_cast<double>(i));
    sampler.sample(static_cast<double>(i));
  }
  EXPECT_EQ(sampler.size(), 4u);          // capacity retained...
  EXPECT_EQ(sampler.total_samples(), 10u);  // ...out of all taken
  EXPECT_EQ(sampler.times_us(), (std::vector<double>{6.0, 7.0, 8.0, 9.0}));
  EXPECT_EQ(sampler.gauge_series("g"),
            (std::vector<double>{6.0, 7.0, 8.0, 9.0}));
}

TEST(TimelineSampler, ClearEmptiesTheWindowButKeepsTotals) {
  MetricsRegistry registry;
  TimelineSampler sampler(registry, 4, 0.0);
  sampler.sample(0.0);
  sampler.sample(1.0);
  sampler.clear();
  EXPECT_EQ(sampler.size(), 0u);
  EXPECT_EQ(sampler.total_samples(), 2u);
  // After clear the next offer is kept again (cadence state reset too).
  EXPECT_TRUE(sampler.maybe_sample(1.5));
}

TEST(TimelineSampler, InstrumentAppearingMidWindowReadsZeroBefore) {
  MetricsRegistry registry;
  TimelineSampler sampler(registry, 8, 0.0);
  sampler.sample(0.0);  // "late" does not exist yet
  registry.counter("late").add(7);
  registry.histogram("bw").record(Bandwidth::gb_per_s(4.0));
  sampler.sample(1.0);
  EXPECT_EQ(sampler.counter_series("late"),
            (std::vector<double>{0.0, 7.0}));
  EXPECT_EQ(sampler.histogram_mean_series("bw"),
            (std::vector<double>{0.0, 4.0}));
}

TEST(TimelineSampler, CsvHasUnionHeaderAndOneRowPerSample) {
  MetricsRegistry registry;
  TimelineSampler sampler(registry, 8, 0.0);
  registry.counter("c").add(3);
  sampler.sample(0.0);
  registry.gauge("g").set(1.5);
  registry.histogram("h").record(Bandwidth::gb_per_s(2.0));
  sampler.sample(10.0);

  const std::string csv = sampler.to_csv();
  EXPECT_EQ(csv.substr(0, csv.find('\n')), "t_us,c,g,h.count,h.mean_gb");
  // Header + 2 sample rows, trailing newline.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
  // The first row predates g/h: zeros there, values in the second.
  EXPECT_NE(csv.find("\n0,3,0,0,0\n"), std::string::npos) << csv;
  EXPECT_NE(csv.find("\n10,3,1.5,1,2\n"), std::string::npos) << csv;
}

TEST(TimelineSampler, JsonIsColumnar) {
  MetricsRegistry registry;
  TimelineSampler sampler(registry, 8, 0.0);
  registry.counter("c").add(1);
  sampler.sample(0.0);
  registry.counter("c").add(1);
  sampler.sample(5.0);
  const std::string json = sampler.to_json();
  EXPECT_NE(json.find("\"period_us\":0"), std::string::npos) << json;
  EXPECT_NE(json.find("\"t_us\":[0,5]"), std::string::npos) << json;
  EXPECT_NE(json.find("\"c\":[1,2]"), std::string::npos) << json;
}

TEST(TimelineSampler, ConcurrentMutationNeverTearsASample) {
  // Updates are lock-free and sampling snapshots each atomic — hammer a
  // counter from two threads while a third samples; every retained sample
  // must be internally consistent (monotone counter, no crash under TSan).
  MetricsRegistry registry;
  Counter& counter = registry.counter("hot");
  TimelineSampler sampler(registry, 128, 0.0);
  std::atomic<bool> stop{false};

  std::thread writer1([&] {
    while (!stop.load(std::memory_order_relaxed)) counter.add(1);
  });
  std::thread writer2([&] {
    while (!stop.load(std::memory_order_relaxed)) counter.add(1);
  });
  for (int i = 0; i < 200; ++i) sampler.sample(static_cast<double>(i));
  stop.store(true, std::memory_order_relaxed);
  writer1.join();
  writer2.join();

  const std::vector<double> series = sampler.counter_series("hot");
  ASSERT_EQ(series.size(), 128u);
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_LE(series[i - 1], series[i]);
  }
}

TEST(TimelineSampler, EngineOffersSimTimeSamples) {
  // Attached through the Observer, the engine offers a sample at every
  // slice boundary, stamped in simulated microseconds.
  const topo::PlatformSpec spec = topo::make_henri();
  MetricsRegistry registry;
  TimelineSampler sampler(registry, 4096, 0.0);
  Observer observer;
  observer.metrics = &registry;
  observer.sampler = &sampler;
  EXPECT_TRUE(observer.attached());

  sim::Engine engine(spec.machine);
  engine.attach_observer(observer);
  const topo::SocketId socket(0);
  const topo::NumaId numa = spec.machine.first_numa_of(socket);
  const topo::NicId nic = spec.machine.nics().front().id;
  sim::StreamSpec dma;
  dma.cls = sim::StreamClass::kDma;
  dma.demand = spec.machine.nic_nominal_bandwidth(nic, numa);
  dma.path = spec.machine.dma_path(nic, numa);
  dma.source_socket = spec.machine.nic(nic).socket;
  (void)engine.start_transfer(dma, 64 * kMiB);
  (void)engine.run_until(Seconds(1.0));

  ASSERT_GE(sampler.size(), 1u);
  const std::vector<double> times = sampler.times_us();
  for (std::size_t i = 1; i < times.size(); ++i) {
    EXPECT_LT(times[i - 1], times[i]);  // strictly advancing sim time
  }
  // The sampled counter ends at the registry's final value.
  const std::vector<double> slices = sampler.counter_series(
      "sim.engine.slices");
  EXPECT_DOUBLE_EQ(slices.back(),
                   static_cast<double>(
                       registry.snapshot().counters.at("sim.engine.slices")));
}

}  // namespace
}  // namespace mcm::obs
