#include "obs/trace_context.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace mcm::obs {
namespace {

TEST(TraceContext, ZeroTraceIdMeansNotTraced) {
  TraceContext context;
  EXPECT_FALSE(context.valid());
  context.trace_id = 1;
  EXPECT_TRUE(context.valid());
}

TEST(TraceIdGenerator, IsDeterministicPerSeed) {
  TraceIdGenerator a(42);
  TraceIdGenerator b(42);
  TraceIdGenerator c(43);
  bool diverged = false;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t id = a.next();
    EXPECT_EQ(id, b.next());
    if (id != c.next()) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(TraceIdGenerator, IdsAreNonzero48BitAndWellSpread) {
  // 48 bits so an id rides a TraceEvent double arg bit-for-bit; nonzero
  // because zero is the "not traced" sentinel.
  TraceIdGenerator gen(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t id = gen.next();
    EXPECT_NE(id, 0u);
    EXPECT_EQ(id & ~kTraceIdMask, 0u) << "id wider than 48 bits: " << id;
    seen.insert(id);
  }
  EXPECT_EQ(seen.size(), 1000u);  // no collisions in a short stream
}

TEST(TraceIdGenerator, IdsSurviveADoubleRoundTrip) {
  TraceIdGenerator gen(99);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t id = gen.next();
    const auto as_double = static_cast<double>(id);
    EXPECT_EQ(static_cast<std::uint64_t>(as_double), id);
  }
}

TEST(TraceIdHex, RendersTwelveLowercaseZeroPaddedChars) {
  EXPECT_EQ(trace_id_to_hex(0x4d2), "0000000004d2");
  EXPECT_EQ(trace_id_to_hex(0xabcdef123456ULL), "abcdef123456");
  EXPECT_EQ(trace_id_to_hex(kTraceIdMask), "ffffffffffff");
}

TEST(TraceIdHex, RoundTripsThroughParse) {
  TraceIdGenerator gen(5);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t id = gen.next();
    std::uint64_t parsed = 0;
    ASSERT_TRUE(parse_trace_id(trace_id_to_hex(id), parsed));
    EXPECT_EQ(parsed, id);
  }
}

TEST(TraceIdHex, ParseIsStrict) {
  std::uint64_t id = 77;
  EXPECT_FALSE(parse_trace_id("", id));
  EXPECT_FALSE(parse_trace_id("4d2", id));             // too short
  EXPECT_FALSE(parse_trace_id("0000000004d21", id));   // too long
  EXPECT_FALSE(parse_trace_id("0000000004D2", id));    // uppercase
  EXPECT_FALSE(parse_trace_id("0000000004g2", id));    // non-hex
  EXPECT_FALSE(parse_trace_id("000000000000", id));    // zero sentinel
  EXPECT_FALSE(parse_trace_id(" 000000004d2", id));    // whitespace
  EXPECT_EQ(id, 77u);  // untouched on every failure
}

}  // namespace
}  // namespace mcm::obs
