#include "obs/log.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace mcm::obs {
namespace {

/// A log with an injected fixed clock writes byte-exact lines.
class LogTest : public ::testing::Test {
 protected:
  LogTest() {
    log_.attach(&out_);
    log_.set_clock([] { return std::uint64_t{1234}; });
  }

  std::ostringstream out_;
  Log log_;
};

TEST_F(LogTest, LineSchemaIsStable) {
  log_.info("accept", {{"fd", std::uint64_t{7}}});
  EXPECT_EQ(out_.str(),
            "{\"ts_us\":1234,\"level\":\"info\",\"event\":\"accept\","
            "\"fd\":7}\n");
}

TEST_F(LogTest, FieldKindsRenderDistinctly) {
  log_.warn("shed", {{"id", "g1"},
                     {"class", std::string("bulk")},
                     {"wait_ms", 2.5},
                     {"count", std::uint64_t{3}}});
  EXPECT_EQ(out_.str(),
            "{\"ts_us\":1234,\"level\":\"warn\",\"event\":\"shed\","
            "\"id\":\"g1\",\"class\":\"bulk\",\"wait_ms\":2.5,"
            "\"count\":3}\n");
}

TEST_F(LogTest, StringsAreJsonEscaped) {
  log_.error("fail", {{"detail", "a \"b\"\\\n\x01"}});
  EXPECT_EQ(out_.str(),
            "{\"ts_us\":1234,\"level\":\"error\",\"event\":\"fail\","
            "\"detail\":\"a \\\"b\\\"\\\\\\n\\u0001\"}\n");
}

TEST_F(LogTest, LevelsBelowTheThresholdAreDropped) {
  log_.set_level(LogLevel::kWarn);
  EXPECT_FALSE(log_.enabled(LogLevel::kInfo));
  EXPECT_TRUE(log_.enabled(LogLevel::kWarn));
  log_.debug("dropped");
  log_.info("dropped");
  log_.warn("kept");
  log_.error("kept-too");
  const std::string text = out_.str();
  EXPECT_EQ(text.find("dropped"), std::string::npos) << text;
  EXPECT_NE(text.find("\"event\":\"kept\""), std::string::npos) << text;
  EXPECT_NE(text.find("\"event\":\"kept-too\""), std::string::npos) << text;
}

TEST_F(LogTest, OffSilencesEverything) {
  log_.set_level(LogLevel::kOff);
  EXPECT_FALSE(log_.enabled(LogLevel::kError));
  log_.error("nope");
  EXPECT_TRUE(out_.str().empty());
}

TEST(Log, NullSinkIsANoOp) {
  Log log;  // no attach(): the default null sink
  EXPECT_FALSE(log.enabled(LogLevel::kError));
  log.info("goes nowhere", {{"k", "v"}});  // must not crash
}

TEST(Log, ParseLogLevelIsStrict) {
  LogLevel level = LogLevel::kError;
  EXPECT_TRUE(parse_log_level("debug", level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(parse_log_level("off", level));
  EXPECT_EQ(level, LogLevel::kOff);
  level = LogLevel::kWarn;
  EXPECT_FALSE(parse_log_level("verbose", level));
  EXPECT_FALSE(parse_log_level("INFO", level));
  EXPECT_FALSE(parse_log_level("", level));
  EXPECT_EQ(level, LogLevel::kWarn);  // untouched on failure
}

TEST(Log, LevelNamesRoundTrip) {
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                         LogLevel::kError, LogLevel::kOff}) {
    LogLevel parsed = LogLevel::kOff;
    ASSERT_TRUE(parse_log_level(to_string(level), parsed)) << to_string(level);
    EXPECT_EQ(parsed, level);
  }
}

TEST(Log, ConcurrentWritersNeverInterleaveLines) {
  std::ostringstream out;
  Log log;
  log.attach(&out);
  log.set_clock([] { return std::uint64_t{0}; });
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log] {
      for (int i = 0; i < kPerThread; ++i) {
        log.info("tick", {{"n", std::uint64_t{1}}});
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // Every line is the complete, identical record — a torn write would
  // break the per-line parse.
  std::istringstream lines(out.str());
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    EXPECT_EQ(line,
              "{\"ts_us\":0,\"level\":\"info\",\"event\":\"tick\",\"n\":1}");
    ++count;
  }
  EXPECT_EQ(count, kThreads * kPerThread);
}

}  // namespace
}  // namespace mcm::obs
