#include <gtest/gtest.h>

#include <cctype>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"
#include "obs/observer.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"
#include "topo/platforms.hpp"
#include "util/units.hpp"

namespace mcm::obs {
namespace {

/// Minimal recursive-descent JSON syntax checker — enough to assert the
/// exported trace is well-formed without pulling in a JSON library.
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  [[nodiscard]] bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\r' || text_[pos_] == '\t')) {
      ++pos_;
    }
  }
  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    return pos_ > start;
  }
  bool object() {
    if (peek() != '{') return false;
    ++pos_;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    if (peek() != '}') return false;
    ++pos_;
    return true;
  }
  bool array() {
    if (peek() != '[') return false;
    ++pos_;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    if (peek() != ']') return false;
    ++pos_;
    return true;
  }
  bool value() {
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

/// The same short scenario `mcmtool trace henri` runs: one CPU flow
/// contending with two 64 MiB DMA transfers on henri's first NUMA node.
/// Deterministic, so its trace doubles as a golden file.
void run_henri_scenario(const Observer& observer) {
  const topo::PlatformSpec spec = topo::make_henri();
  const topo::Machine& machine = spec.machine;
  sim::Engine engine(machine);
  engine.attach_observer(observer);

  const topo::SocketId socket(0);
  const topo::NumaId numa = machine.first_numa_of(socket);
  sim::StreamSpec cpu;
  cpu.cls = sim::StreamClass::kCpu;
  cpu.demand = machine.link(machine.controller_of(numa)).capacity * 0.5;
  cpu.path = machine.cpu_path(socket, numa);
  cpu.source_socket = socket;

  const topo::NicId nic = machine.nics().front().id;
  sim::StreamSpec dma;
  dma.cls = sim::StreamClass::kDma;
  dma.demand = machine.nic_nominal_bandwidth(nic, numa);
  dma.path = machine.dma_path(nic, numa);
  dma.source_socket = machine.nic(nic).socket;

  const sim::TransferId flow = engine.start_flow(cpu);
  (void)engine.start_transfer(dma, 64 * kMiB);
  (void)engine.start_transfer(dma, 64 * kMiB);
  (void)engine.run_until(Seconds(5.0));
  (void)engine.stop(flow);
}

TEST(TraceExport, EngineRunExportsWellFormedChromeTrace) {
  ChromeTraceSink sink;
  sink.set_track_name(0, "engine");
  Observer observer;
  observer.trace = &sink;
  run_henri_scenario(observer);

  // Every engine event kind shows up.
  EXPECT_GE(sink.count("slice"), 1u);
  EXPECT_GE(sink.count("grant"), 2u);
  EXPECT_EQ(sink.count("flow-start"), 1u);
  EXPECT_EQ(sink.count("transfer-start"), 2u);
  EXPECT_EQ(sink.count("transfer-complete"), 2u);
  EXPECT_EQ(sink.count("transfer-stop"), 1u);

  const std::string json = sink.to_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  // Chrome trace_event essentials: a JSON array of events with a phase and
  // a timestamp, plus the thread_name metadata for the named track.
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"engine\""), std::string::npos);
}

TEST(TraceExport, EngineTraceMatchesGoldenFile) {
  ChromeTraceSink sink;
  sink.set_track_name(0, "engine");
  Observer observer;
  observer.trace = &sink;
  run_henri_scenario(observer);

  const std::string golden_path =
      std::string(MCM_OBS_GOLDEN_DIR) + "/golden_engine_trace.json";
  std::ifstream file(golden_path);
  ASSERT_TRUE(file) << "missing golden file " << golden_path
                    << " (regenerate with `mcmtool trace henri --out ...`)";
  std::ostringstream text;
  text << file.rdbuf();
  // The simulation is deterministic, so the export is byte-stable. If an
  // intentional engine/arbiter change lands, regenerate the golden with
  // `mcmtool trace henri --out tests/obs/golden_engine_trace.json`.
  EXPECT_EQ(sink.to_json(), text.str());
}

TEST(TraceExport, EngineRunPopulatesMetrics) {
  MetricsRegistry registry;
  Observer observer;
  observer.metrics = &registry;
  run_henri_scenario(observer);

  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_FALSE(snap.empty());
  EXPECT_GE(snap.counters.at("sim.engine.slices"), 1u);
  EXPECT_EQ(snap.counters.at("sim.engine.transfers_started"), 2u);
  EXPECT_EQ(snap.counters.at("sim.engine.transfers_completed"), 2u);
  EXPECT_EQ(snap.counters.at("sim.engine.flows_started"), 1u);
  EXPECT_EQ(snap.counters.at("sim.engine.transfers_stopped"), 1u);
  EXPECT_GT(snap.histograms.at("sim.engine.grant_dma_gb").count, 0u);
}

TEST(TraceExport, DetachedObserverRecordsNothing) {
  // The null-sink default: the same run with no observer attached must not
  // touch any sink or registry (there are none to touch) and must not
  // change behaviour — this is the zero-cost guarantee's API face.
  Observer observer;
  EXPECT_FALSE(observer.attached());
  run_henri_scenario(observer);  // must simply not crash
}

}  // namespace
}  // namespace mcm::obs
