#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace mcm::obs {
namespace {

TEST(LatencyHistogram, BucketBoundsAreLogLinear) {
  // 1 µs, then nine bounds per decade (2..10 · 10^d) for seven decades.
  EXPECT_EQ(LatencyHistogram::kBucketCount, 65u);
  EXPECT_EQ(LatencyHistogram::bucket_bound_us(0), 1.0);
  EXPECT_EQ(LatencyHistogram::bucket_bound_us(1), 2.0);
  EXPECT_EQ(LatencyHistogram::bucket_bound_us(9), 10.0);
  EXPECT_EQ(LatencyHistogram::bucket_bound_us(10), 20.0);
  EXPECT_EQ(LatencyHistogram::bucket_bound_us(18), 100.0);
  EXPECT_EQ(LatencyHistogram::bucket_bound_us(19), 200.0);
  // Last finite bound is 10^7 µs = 10 s.
  EXPECT_EQ(
      LatencyHistogram::bucket_bound_us(LatencyHistogram::kFiniteBounds - 1),
      1e7);
  // Bounds are strictly increasing — the quantile interpolation depends
  // on [bound(i-1), bound(i)] being a real interval.
  for (std::size_t i = 1; i < LatencyHistogram::kFiniteBounds; ++i) {
    EXPECT_LT(LatencyHistogram::bucket_bound_us(i - 1),
              LatencyHistogram::bucket_bound_us(i))
        << "bucket " << i;
  }
}

TEST(LatencyHistogram, RecordPicksTheFirstBoundAtOrAboveTheSample) {
  LatencyHistogram h;
  h.record_us(0.5);   // below the first bound: bucket 0
  h.record_us(1.0);   // inclusive upper bound: still bucket 0
  h.record_us(1.5);   // first bound >= 1.5 is 2: bucket 1
  h.record_us(2.0);   // inclusive: bucket 1
  h.record_us(2.1);   // bucket 2 (bound 3)
  h.record_us(10.0);  // decade boundary, inclusive: bucket 9 (bound 10)
  h.record_us(11.0);  // next decade: bucket 10 (bound 20)
  h.record_us(9.9e6);  // last finite bucket (bound 1e7)
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(9), 1u);
  EXPECT_EQ(h.bucket(10), 1u);
  EXPECT_EQ(h.bucket(LatencyHistogram::kFiniteBounds - 1), 1u);
  EXPECT_EQ(h.count(), 8u);
  EXPECT_NEAR(h.sum_us(), 0.5 + 1.0 + 1.5 + 2.0 + 2.1 + 10.0 + 11.0 + 9.9e6,
              1e-6);
  EXPECT_EQ(h.max_us(), 9.9e6);
}

TEST(LatencyHistogram, NegativeSamplesClampToZero) {
  // Clock skew can produce a (tiny) negative latency; it must not
  // underflow the bucket index or poison the sum.
  LatencyHistogram h;
  h.record_us(-5.0);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.sum_us(), 0.0);
  EXPECT_EQ(h.max_us(), 0.0);
}

TEST(LatencyHistogram, OverflowBucketCatchesEverythingAboveTenSeconds) {
  LatencyHistogram h;
  h.record_us(2e7);  // 20 s: above the last finite bound
  h.record_us(1e9);
  EXPECT_EQ(h.bucket(LatencyHistogram::kFiniteBounds), 2u);
  EXPECT_EQ(h.max_us(), 1e9);
  // A quantile landing in the overflow bucket reports the tracked max —
  // the bucket has no upper bound to interpolate against.
  const LatencySnapshot snap = snapshot_latency(h);
  EXPECT_EQ(snap.p50_us, 1e9);
  EXPECT_EQ(snap.p99_us, 1e9);
}

TEST(LatencySnapshot, QuantilesInterpolateWithinTheBucket) {
  LatencyHistogram h;
  for (int i = 0; i < 4; ++i) h.record_us(1.0);
  const LatencySnapshot snap = snapshot_latency(h);
  EXPECT_EQ(snap.count, 4u);
  EXPECT_EQ(snap.max_us, 1.0);
  EXPECT_NEAR(snap.mean_us(), 1.0, 1e-12);
  // All four samples sit in bucket 0 = (0, 1]; the quantile assumes a
  // uniform spread across the interval.
  EXPECT_NEAR(snap.p50_us, 0.5, 1e-12);
  EXPECT_NEAR(snap.p95_us, 0.95, 1e-12);
  EXPECT_NEAR(snap.p99_us, 0.99, 1e-12);
  EXPECT_EQ(snap.quantile_us(0.0), 0.0);
  EXPECT_NEAR(snap.quantile_us(1.0), 1.0, 1e-12);
}

TEST(LatencySnapshot, QuantilesAreCappedByTheTrackedMax) {
  // One sample of 105 µs lands in the (100, 200] bucket; interpolation
  // alone would report values up to 200, but the true max is known.
  LatencyHistogram h;
  h.record_us(105.0);
  const LatencySnapshot snap = snapshot_latency(h);
  EXPECT_LE(snap.p50_us, 105.0);
  EXPECT_LE(snap.p99_us, 105.0);
  EXPECT_EQ(snap.max_us, 105.0);
}

TEST(LatencySnapshot, EmptyHistogramReportsZeroes) {
  const LatencySnapshot snap = snapshot_latency(LatencyHistogram{});
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.p50_us, 0.0);
  EXPECT_EQ(snap.p99_us, 0.0);
  EXPECT_EQ(snap.mean_us(), 0.0);
  EXPECT_EQ(snap.quantile_us(0.5), 0.0);
}

TEST(LatencyHistogram, ResetZeroesEverything) {
  LatencyHistogram h;
  h.record_us(42.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum_us(), 0.0);
  EXPECT_EQ(h.max_us(), 0.0);
  for (std::size_t i = 0; i < LatencyHistogram::kBucketCount; ++i) {
    EXPECT_EQ(h.bucket(i), 0u) << "bucket " << i;
  }
}

TEST(LatencyHistogram, ConcurrentRecordsAreExact) {
  LatencyHistogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.record_us(250.0);
    });
  }
  for (std::thread& t : threads) t.join();
  const auto total = static_cast<std::uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(h.count(), total);
  EXPECT_NEAR(h.sum_us(), 250.0 * static_cast<double>(total), 1e-3);
  EXPECT_EQ(h.max_us(), 250.0);
}

TEST(MetricsRegistry, LatencyInstrumentIsStableAndSnapshotted) {
  MetricsRegistry registry;
  LatencyHistogram& a = registry.latency("svc.latency.total");
  a.record_us(3.0);
  registry.counter("unrelated").add();
  LatencyHistogram& b = registry.latency("svc.latency.total");
  EXPECT_EQ(&a, &b);

  MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.latencies.count("svc.latency.total"), 1u);
  EXPECT_EQ(snap.latencies.at("svc.latency.total").count, 1u);
  EXPECT_FALSE(snap.empty());

  registry.reset();
  snap = registry.snapshot();
  EXPECT_EQ(snap.latencies.at("svc.latency.total").count, 0u);
}

TEST(MetricsRegistry, TextExportRendersLatencySummaryAndBuckets) {
  MetricsRegistry registry;
  LatencyHistogram& h = registry.latency("svc.latency.predict");
  h.record_us(1.0);
  h.record_us(1.0);
  const std::string text = registry.to_text();
  EXPECT_NE(text.find("svc.latency.predict count=2 p50_us=0.5 "
                      "p95_us=0.95 p99_us=0.99 max_us=1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("svc.latency.predict{le=1} 2"), std::string::npos)
      << text;
}

TEST(MetricsRegistry, JsonExportUsesSparseLatencyBuckets) {
  MetricsRegistry registry;
  LatencyHistogram& h = registry.latency("svc.latency.predict");
  h.record_us(1.0);
  h.record_us(15.0);  // bucket 10
  h.record_us(1e9);   // overflow bucket 64
  const std::string json = registry.to_json();
  EXPECT_NE(json.find("\"latencies\":{\"svc.latency.predict\":"),
            std::string::npos)
      << json;
  // Sparse [index, count] pairs — 66 mostly-zero entries would dominate
  // every stats reply otherwise.
  EXPECT_NE(json.find("\"buckets\":[[0,1],[10,1],[64,1]]"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"max_us\":1e+09"), std::string::npos) << json;
}

}  // namespace
}  // namespace mcm::obs
