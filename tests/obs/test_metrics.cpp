#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <thread>
#include <vector>

namespace mcm::obs {
namespace {

TEST(Counter, AddAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, WrapsOnOverflow) {
  Counter c;
  c.add(std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(c.value(), std::numeric_limits<std::uint64_t>::max());
  // Documented behaviour: standard unsigned wrap-around, no UB, no trap.
  c.add(3);
  EXPECT_EQ(c.value(), 2u);
}

TEST(Gauge, LastWriteWins) {
  Gauge g;
  g.set(7.5);
  g.set(-2.0);
  EXPECT_EQ(g.value(), -2.0);
  g.reset();
  EXPECT_EQ(g.value(), 0.0);
}

TEST(Gauge, ConcurrentAddsBalanceToZero) {
  // add() is the in-flight tracker: +1 on entry, -1 on exit from many
  // threads must land back on exactly zero.
  Gauge g;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g] {
      for (int i = 0; i < kPerThread; ++i) {
        g.add(1.0);
        g.add(-1.0);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(g.value(), 0.0);
}

TEST(BandwidthHistogram, BucketsBracketTheBounds) {
  BandwidthHistogram h;
  h.record(Bandwidth::gb_per_s(0.2));    // <= 0.25: bucket 0
  h.record(Bandwidth::gb_per_s(0.25));   // inclusive upper bound: bucket 0
  h.record(Bandwidth::gb_per_s(128.0));  // last finite bucket
  h.record(Bandwidth::gb_per_s(500.0));  // overflow bucket
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(BandwidthHistogram::kBucketBoundsGb.size() - 1), 1u);
  EXPECT_EQ(h.bucket(BandwidthHistogram::kBucketBoundsGb.size()), 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_NEAR(h.sum_gb(), 0.2 + 0.25 + 128.0 + 500.0, 1e-9);
  EXPECT_NEAR(h.mean_gb(), h.sum_gb() / 4.0, 1e-12);
}

TEST(BandwidthHistogram, MeanOfEmptyIsZero) {
  BandwidthHistogram h;
  EXPECT_EQ(h.mean_gb(), 0.0);
}

TEST(MetricsRegistry, FindOrCreateReturnsStableInstrument) {
  MetricsRegistry registry;
  Counter& a = registry.counter("sim.engine.slices");
  a.add(5);
  // Same name resolves to the same instrument, even after other inserts.
  registry.counter("zzz").add();
  registry.gauge("runtime.pool.workers").set(4);
  Counter& b = registry.counter("sim.engine.slices");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 5u);
}

TEST(MetricsRegistry, SnapshotAndReset) {
  MetricsRegistry registry;
  EXPECT_TRUE(registry.snapshot().empty());
  registry.counter("a.count").add(3);
  registry.gauge("b.depth").set(2.5);
  registry.histogram("c.bw").record(Bandwidth::gb_per_s(6.0));

  MetricsSnapshot snap = registry.snapshot();
  EXPECT_FALSE(snap.empty());
  EXPECT_EQ(snap.counters.at("a.count"), 3u);
  EXPECT_EQ(snap.gauges.at("b.depth"), 2.5);
  EXPECT_EQ(snap.histograms.at("c.bw").count, 1u);
  EXPECT_NEAR(snap.histograms.at("c.bw").mean_gb, 6.0, 1e-9);

  registry.reset();
  snap = registry.snapshot();
  // Registrations survive a reset; values are zeroed.
  EXPECT_EQ(snap.counters.at("a.count"), 0u);
  EXPECT_EQ(snap.gauges.at("b.depth"), 0.0);
  EXPECT_EQ(snap.histograms.at("c.bw").count, 0u);
}

TEST(MetricsRegistry, ConcurrentIncrementsAreExact) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("contended.count");
  BandwidthHistogram& histogram = registry.histogram("contended.bw");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter, &histogram] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.add();
        histogram.record(Bandwidth::gb_per_s(1.5));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(histogram.count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_NEAR(histogram.sum_gb(), 1.5 * kThreads * kPerThread, 1e-6);
}

TEST(MetricsRegistry, TextExportIsSortedAndComplete) {
  MetricsRegistry registry;
  registry.counter("z.last").add(1);
  registry.counter("a.first").add(2);
  registry.histogram("m.bw").record(Bandwidth::gb_per_s(3.0));
  const std::string text = registry.to_text();
  const std::size_t first = text.find("a.first 2");
  const std::size_t hist = text.find("m.bw count=1");
  const std::size_t last = text.find("z.last 1");
  ASSERT_NE(first, std::string::npos) << text;
  ASSERT_NE(hist, std::string::npos) << text;
  ASSERT_NE(last, std::string::npos) << text;
  EXPECT_LT(first, last);
  // Non-empty buckets render as {le=bound} lines.
  EXPECT_NE(text.find("m.bw{le=4} 1"), std::string::npos) << text;
}

TEST(MetricsRegistry, JsonExportHasAllSections) {
  MetricsRegistry registry;
  registry.counter("n.count").add(7);
  registry.gauge("n.gauge").set(1.25);
  registry.histogram("n.bw").record(Bandwidth::gb_per_s(2.0));
  const std::string json = registry.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"gauges\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"histograms\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"n.count\":7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"n.gauge\":1.25"), std::string::npos) << json;
  // Free render functions agree with the member exports.
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(render_text(snap), registry.to_text());
  EXPECT_EQ(render_json(snap), registry.to_json());
}

}  // namespace
}  // namespace mcm::obs
