#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "util/units.hpp"

namespace mcm::obs {
namespace {

/// Hand-built deterministic registry: one of everything, with values that
/// exercise bucket edges (0.2 -> first bucket, 4.0 -> mid, 200 -> overflow).
void populate(MetricsRegistry& registry) {
  registry.counter("sim.engine.slices").add(42);
  registry.counter("net.messages").add(3);
  registry.gauge("runtime.pool.workers").set(8);
  registry.gauge("bench.progress").set(0.75);
  BandwidthHistogram& h = registry.histogram("sim.engine.grant_dma_gb");
  h.record(Bandwidth::gb_per_s(0.2));
  h.record(Bandwidth::gb_per_s(4.0));
  h.record(Bandwidth::gb_per_s(200.0));
}

/// Compare `actual` against the golden file; regenerate the golden when
/// MCM_OBS_REGEN_GOLDEN is set (then the comparison trivially passes).
void expect_matches_golden(const std::string& actual,
                           const std::string& filename) {
  const std::string path = std::string(MCM_OBS_GOLDEN_DIR) + "/" + filename;
  if (std::getenv("MCM_OBS_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::trunc);
    ASSERT_TRUE(out) << "cannot regenerate " << path;
    out << actual;
  }
  std::ifstream file(path);
  ASSERT_TRUE(file) << "missing golden file " << path
                    << " (regenerate with MCM_OBS_REGEN_GOLDEN=1)";
  std::ostringstream text;
  text << file.rdbuf();
  EXPECT_EQ(actual, text.str()) << "golden mismatch for " << filename
                                << "; if intentional, regenerate with "
                                   "MCM_OBS_REGEN_GOLDEN=1";
}

TEST(PrometheusExport, NameSanitization) {
  EXPECT_EQ(prometheus_name("sim.engine.slices"), "mcm_sim_engine_slices");
  EXPECT_EQ(prometheus_name("grant-dma gb/s"), "mcm_grant_dma_gb_s");
  EXPECT_EQ(prometheus_name("mcm_already_prefixed"), "mcm_already_prefixed");
  EXPECT_EQ(prometheus_name(""), "mcm_");
}

TEST(PrometheusExport, HistogramBucketsAreCumulative) {
  MetricsRegistry registry;
  populate(registry);
  const std::string prom = render_prometheus(registry.snapshot());
  // 0.2 lands in le="0.25"; everything cumulates up to the +Inf bucket.
  EXPECT_NE(prom.find("mcm_sim_engine_grant_dma_gb_bucket{le=\"0.25\"} 1"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("mcm_sim_engine_grant_dma_gb_bucket{le=\"4\"} 2"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("mcm_sim_engine_grant_dma_gb_bucket{le=\"128\"} 2"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("mcm_sim_engine_grant_dma_gb_bucket{le=\"+Inf\"} 3"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("mcm_sim_engine_grant_dma_gb_count 3"),
            std::string::npos)
      << prom;
}

TEST(PrometheusExport, MatchesGoldenFile) {
  MetricsRegistry registry;
  populate(registry);
  expect_matches_golden(render_prometheus(registry.snapshot()),
                        "golden_metrics.prom");
}

TEST(JsonReport, SummaryStatisticsAreCorrect) {
  const SeriesSummary s = summarize_series({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_NEAR(s.stddev, 1.2909944, 1e-6);
  EXPECT_EQ(summarize_series({}).count, 0u);
}

TEST(JsonReport, MatchesGoldenFile) {
  MetricsRegistry registry;
  TimelineSampler sampler(registry, 16, 0.0);
  registry.counter("sim.engine.slices").add(10);
  sampler.sample(0.0);
  populate(registry);  // slices -> 52, the rest appears mid-window
  sampler.sample(1000.0);

  ReportMeta meta;
  meta.name = "golden-report";
  meta.platform = "henri";
  meta.git = "test";  // pinned so the golden is build-independent
  expect_matches_golden(
      render_json_report(meta, registry.snapshot(), &sampler),
      "golden_report.json");
}

TEST(JsonReport, OmitsTimelineWhenNoSampler) {
  MetricsRegistry registry;
  populate(registry);
  ReportMeta meta;
  meta.name = "no-timeline";
  const std::string report =
      render_json_report(meta, registry.snapshot(), nullptr);
  EXPECT_NE(report.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(report.find("\"metrics\":{"), std::string::npos);
  EXPECT_EQ(report.find("\"timeline\""), std::string::npos);
  EXPECT_EQ(report.find("\"summary\""), std::string::npos);
}

}  // namespace
}  // namespace mcm::obs
