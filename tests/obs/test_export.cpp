#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "util/units.hpp"

namespace mcm::obs {
namespace {

/// Hand-built deterministic registry: one of everything, with values that
/// exercise bucket edges (0.2 -> first bucket, 4.0 -> mid, 200 -> overflow)
/// plus the labeled latency instruments the service registers.
void populate(MetricsRegistry& registry) {
  registry.counter("sim.engine.slices").add(42);
  registry.counter("net.messages").add(3);
  registry.gauge("runtime.pool.workers").set(8);
  registry.gauge("bench.progress").set(0.75);
  BandwidthHistogram& h = registry.histogram("sim.engine.grant_dma_gb");
  h.record(Bandwidth::gb_per_s(0.2));
  h.record(Bandwidth::gb_per_s(4.0));
  h.record(Bandwidth::gb_per_s(200.0));
  // Two label variants of one family (distinct registry entries) and one
  // unlabeled latency, with samples at a bucket edge, mid-range and in
  // the overflow bucket.
  LatencyHistogram& interactive = registry.latency(
      "svc.latency.total{class=\"interactive\",method=\"predict\"}");
  interactive.record_us(1.0);
  interactive.record_us(450.0);
  LatencyHistogram& bulk = registry.latency(
      "svc.latency.total{class=\"bulk\",method=\"predict\"}");
  bulk.record_us(2e7);  // 20 s: overflow bucket
  registry.latency("svc.latency.calibrate").record_us(125000.0);
}

/// Compare `actual` against the golden file; regenerate the golden when
/// MCM_OBS_REGEN_GOLDEN is set (then the comparison trivially passes).
void expect_matches_golden(const std::string& actual,
                           const std::string& filename) {
  const std::string path = std::string(MCM_OBS_GOLDEN_DIR) + "/" + filename;
  if (std::getenv("MCM_OBS_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::trunc);
    ASSERT_TRUE(out) << "cannot regenerate " << path;
    out << actual;
  }
  std::ifstream file(path);
  ASSERT_TRUE(file) << "missing golden file " << path
                    << " (regenerate with MCM_OBS_REGEN_GOLDEN=1)";
  std::ostringstream text;
  text << file.rdbuf();
  EXPECT_EQ(actual, text.str()) << "golden mismatch for " << filename
                                << "; if intentional, regenerate with "
                                   "MCM_OBS_REGEN_GOLDEN=1";
}

TEST(PrometheusExport, NameSanitization) {
  EXPECT_EQ(prometheus_name("sim.engine.slices"), "mcm_sim_engine_slices");
  EXPECT_EQ(prometheus_name("grant-dma gb/s"), "mcm_grant_dma_gb_s");
  EXPECT_EQ(prometheus_name("mcm_already_prefixed"), "mcm_already_prefixed");
  EXPECT_EQ(prometheus_name(""), "mcm_");
}

TEST(PrometheusExport, LabelBlocksSplitIntoFamilyAndLabels) {
  const PrometheusSeries s = prometheus_series(
      "svc.latency.total{class=\"interactive\",method=\"predict\"}");
  EXPECT_EQ(s.family, "mcm_svc_latency_total");
  ASSERT_EQ(s.labels.size(), 2u);
  EXPECT_EQ(s.labels[0].first, "class");
  EXPECT_EQ(s.labels[0].second, "interactive");
  EXPECT_EQ(s.labels[1].first, "method");
  EXPECT_EQ(s.labels[1].second, "predict");

  // Label keys are sanitized, values escaped per the exposition format.
  const PrometheusSeries odd =
      prometheus_series("x{0bad-key=\"a\\b\"}");
  ASSERT_EQ(odd.labels.size(), 1u);
  EXPECT_EQ(odd.labels[0].first, "_0bad_key");
  EXPECT_EQ(odd.labels[0].second, "a\\\\b");
}

TEST(PrometheusExport, MalformedLabelBlocksFallBackToMangling) {
  // Anything that is not `key="value",...` inside the braces is treated
  // as part of the name and mangled, never emitted as a bogus series.
  for (const char* name :
       {"a{b}", "a{b=c}", "a{b=\"c\",}", "a{=\"c\"}", "a{b=\"c"}) {
    const PrometheusSeries s = prometheus_series(name);
    EXPECT_TRUE(s.labels.empty()) << name;
    EXPECT_EQ(s.family.find('{'), std::string::npos) << name;
    EXPECT_EQ(s.family.find('"'), std::string::npos) << name;
  }
}

TEST(PrometheusExport, LatencyFamiliesShareOneTypeDeclaration) {
  MetricsRegistry registry;
  populate(registry);
  const std::string prom = render_prometheus(registry.snapshot());
  // The two label variants are one family: exactly one TYPE line, and a
  // strict parser would reject a duplicate.
  EXPECT_EQ(prom.find("# TYPE mcm_svc_latency_total histogram"),
            prom.rfind("# TYPE mcm_svc_latency_total histogram"))
      << prom;
  // Sparse buckets: 1.0 lands on the le="1" edge, 450 in le="500"; the
  // +Inf bucket always closes the family.
  EXPECT_NE(
      prom.find("mcm_svc_latency_total_bucket{class=\"interactive\","
                "method=\"predict\",le=\"1\"} 1"),
      std::string::npos)
      << prom;
  EXPECT_NE(
      prom.find("mcm_svc_latency_total_bucket{class=\"interactive\","
                "method=\"predict\",le=\"500\"} 2"),
      std::string::npos)
      << prom;
  // The 20 s bulk sample is above every finite bound: only +Inf counts it.
  EXPECT_NE(prom.find("mcm_svc_latency_total_bucket{class=\"bulk\","
                      "method=\"predict\",le=\"+Inf\"} 1"),
            std::string::npos)
      << prom;
  // Quantile gauges ride alongside as their own families.
  EXPECT_NE(prom.find("# TYPE mcm_svc_latency_total_p99_us gauge"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("mcm_svc_latency_calibrate_p50_us "),
            std::string::npos)
      << prom;
}

/// Minimal strict parser of the exposition text format: every line must
/// be a comment or `name{labels} value`, names must match the metric
/// grammar, and no family may be TYPE-declared twice.
void expect_valid_exposition(const std::string& text) {
  std::set<std::string> declared;
  std::istringstream lines(text);
  std::string line;
  const auto name_ok = [](const std::string& name) {
    if (name.empty()) return false;
    for (char c : name) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == ':';
      if (!ok) return false;
    }
    return !(name[0] >= '0' && name[0] <= '9');
  };
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream fields(line.substr(7));
      std::string family, type;
      ASSERT_TRUE(fields >> family >> type) << line;
      EXPECT_TRUE(name_ok(family)) << line;
      EXPECT_TRUE(type == "counter" || type == "gauge" ||
                  type == "histogram")
          << line;
      EXPECT_TRUE(declared.insert(family).second)
          << "family declared twice: " << family;
      continue;
    }
    // `name value` or `name{k="v",...} value`.
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    std::string series = line.substr(0, space);
    const std::string value = line.substr(space + 1);
    EXPECT_FALSE(value.empty()) << line;
    const std::size_t open = series.find('{');
    if (open != std::string::npos) {
      ASSERT_EQ(series.back(), '}') << line;
      const std::string labels = series.substr(open + 1,
                                               series.size() - open - 2);
      // Each label is key="value"; quotes close and commas separate.
      std::size_t i = 0;
      while (i < labels.size()) {
        const std::size_t eq = labels.find('=', i);
        ASSERT_NE(eq, std::string::npos) << line;
        EXPECT_TRUE(name_ok(labels.substr(i, eq - i))) << line;
        ASSERT_EQ(labels[eq + 1], '"') << line;
        std::size_t end = eq + 2;
        while (end < labels.size() &&
               (labels[end] != '"' || labels[end - 1] == '\\')) {
          ++end;
        }
        ASSERT_LT(end, labels.size()) << "unterminated label: " << line;
        i = end + 1;
        if (i < labels.size()) {
          ASSERT_EQ(labels[i], ',') << line;
          ++i;
        }
      }
      series = series.substr(0, open);
    }
    EXPECT_TRUE(name_ok(series)) << line;
  }
}

TEST(PrometheusExport, OutputPassesAStrictParser) {
  MetricsRegistry registry;
  populate(registry);
  // Adversarial names: dots, dashes, spaces, slashes and a label block
  // with a key needing sanitization must all come out grammar-clean.
  registry.counter("weird name-with/chars").add(1);
  registry.gauge("svc.queue{1class=\"a b\"}").set(2.0);
  expect_valid_exposition(render_prometheus(registry.snapshot()));
}

TEST(PrometheusExport, HistogramBucketsAreCumulative) {
  MetricsRegistry registry;
  populate(registry);
  const std::string prom = render_prometheus(registry.snapshot());
  // 0.2 lands in le="0.25"; everything cumulates up to the +Inf bucket.
  EXPECT_NE(prom.find("mcm_sim_engine_grant_dma_gb_bucket{le=\"0.25\"} 1"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("mcm_sim_engine_grant_dma_gb_bucket{le=\"4\"} 2"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("mcm_sim_engine_grant_dma_gb_bucket{le=\"128\"} 2"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("mcm_sim_engine_grant_dma_gb_bucket{le=\"+Inf\"} 3"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("mcm_sim_engine_grant_dma_gb_count 3"),
            std::string::npos)
      << prom;
}

TEST(PrometheusExport, MatchesGoldenFile) {
  MetricsRegistry registry;
  populate(registry);
  expect_matches_golden(render_prometheus(registry.snapshot()),
                        "golden_metrics.prom");
}

TEST(JsonReport, SummaryStatisticsAreCorrect) {
  const SeriesSummary s = summarize_series({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_NEAR(s.stddev, 1.2909944, 1e-6);
  EXPECT_EQ(summarize_series({}).count, 0u);
}

TEST(JsonReport, MatchesGoldenFile) {
  MetricsRegistry registry;
  TimelineSampler sampler(registry, 16, 0.0);
  registry.counter("sim.engine.slices").add(10);
  sampler.sample(0.0);
  populate(registry);  // slices -> 52, the rest appears mid-window
  sampler.sample(1000.0);

  ReportMeta meta;
  meta.name = "golden-report";
  meta.platform = "henri";
  meta.git = "test";  // pinned so the golden is build-independent
  expect_matches_golden(
      render_json_report(meta, registry.snapshot(), &sampler),
      "golden_report.json");
}

TEST(JsonReport, OmitsTimelineWhenNoSampler) {
  MetricsRegistry registry;
  populate(registry);
  ReportMeta meta;
  meta.name = "no-timeline";
  const std::string report =
      render_json_report(meta, registry.snapshot(), nullptr);
  EXPECT_NE(report.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(report.find("\"metrics\":{"), std::string::npos);
  EXPECT_EQ(report.find("\"timeline\""), std::string::npos);
  EXPECT_EQ(report.find("\"summary\""), std::string::npos);
}

}  // namespace
}  // namespace mcm::obs
