#include "cli.hpp"

#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "util/contracts.hpp"

namespace mcm::cli {
namespace {

/// argv builder: keeps the strings alive and hands out char* the way
/// main() would.
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : args_(std::move(args)) {
    pointers_.reserve(args_.size());
    for (std::string& arg : args_) pointers_.push_back(arg.data());
  }
  [[nodiscard]] int argc() const {
    return static_cast<int>(pointers_.size());
  }
  [[nodiscard]] char** argv() { return pointers_.data(); }

 private:
  std::vector<std::string> args_;
  std::vector<char*> pointers_;
};

std::vector<Option> sample_options() {
  return {
      {"--cores", "N", "4", "core count"},
      {"--csv", "FILE", "", "output file"},
      {"--verbose", "", "", "boolean flag"},
  };
}

TEST(Parser, BothFlagSpellingsWork) {
  for (const auto& args :
       {std::vector<std::string>{"tool", "cmd", "--cores", "8"},
        std::vector<std::string>{"tool", "cmd", "--cores=8"}}) {
    Argv argv(args);
    Parser parser("tool cmd", sample_options());
    std::string error;
    ASSERT_TRUE(parser.parse(argv.argc(), argv.argv(), 2, &error))
        << error;
    EXPECT_EQ(parser.value("--cores"), "8");
    EXPECT_TRUE(parser.is_set("--cores"));
  }
}

TEST(Parser, DefaultsApplyWhenAbsent) {
  Argv argv({"tool", "cmd"});
  Parser parser("tool cmd", sample_options());
  std::string error;
  ASSERT_TRUE(parser.parse(argv.argc(), argv.argv(), 2, &error));
  EXPECT_EQ(parser.value("--cores"), "4");
  EXPECT_FALSE(parser.is_set("--cores"));
  EXPECT_FALSE(parser.flag("--verbose"));
}

TEST(Parser, LastOccurrenceWins) {
  Argv argv({"tool", "cmd", "--cores", "2", "--cores=16"});
  Parser parser("tool cmd", sample_options());
  std::string error;
  ASSERT_TRUE(parser.parse(argv.argc(), argv.argv(), 2, &error));
  EXPECT_EQ(parser.value("--cores"), "16");
}

TEST(Parser, PositionalsKeepTheirOrder) {
  Argv argv({"tool", "cmd", "henri", "--cores", "8", "extra"});
  Parser parser("tool cmd", sample_options());
  std::string error;
  ASSERT_TRUE(parser.parse(argv.argc(), argv.argv(), 2, &error));
  ASSERT_EQ(parser.positionals().size(), 2u);
  EXPECT_EQ(parser.positionals()[0], "henri");
  EXPECT_EQ(parser.positionals()[1], "extra");
}

TEST(Parser, DoubleDashEndsOptionProcessing) {
  Argv argv({"tool", "cmd", "--", "--cores", "8"});
  Parser parser("tool cmd", sample_options());
  std::string error;
  ASSERT_TRUE(parser.parse(argv.argc(), argv.argv(), 2, &error));
  EXPECT_FALSE(parser.is_set("--cores"));
  ASSERT_EQ(parser.positionals().size(), 2u);
  EXPECT_EQ(parser.positionals()[0], "--cores");
}

TEST(Parser, UnknownOptionIsAHardError) {
  Argv argv({"tool", "cmd", "--bogus", "1"});
  Parser parser("tool cmd", sample_options());
  std::string error;
  EXPECT_FALSE(parser.parse(argv.argc(), argv.argv(), 2, &error));
  EXPECT_NE(error.find("--bogus"), std::string::npos);
}

TEST(Parser, MissingValueIsAnError) {
  Argv argv({"tool", "cmd", "--cores"});
  Parser parser("tool cmd", sample_options());
  std::string error;
  EXPECT_FALSE(parser.parse(argv.argc(), argv.argv(), 2, &error));
  EXPECT_NE(error.find("--cores"), std::string::npos);
}

TEST(Parser, BooleanFlagRejectsInlineValue) {
  Argv argv({"tool", "cmd", "--verbose=yes"});
  Parser parser("tool cmd", sample_options());
  std::string error;
  EXPECT_FALSE(parser.parse(argv.argc(), argv.argv(), 2, &error));
  EXPECT_NE(error.find("--verbose"), std::string::npos);
}

TEST(Parser, BooleanFlagDoesNotSwallowTheNextArgument) {
  Argv argv({"tool", "cmd", "--verbose", "henri"});
  Parser parser("tool cmd", sample_options());
  std::string error;
  ASSERT_TRUE(parser.parse(argv.argc(), argv.argv(), 2, &error));
  EXPECT_TRUE(parser.flag("--verbose"));
  ASSERT_EQ(parser.positionals().size(), 1u);
  EXPECT_EQ(parser.positionals()[0], "henri");
}

TEST(Parser, TypedAccessorsParseAndRejectGarbage) {
  Argv argv({"tool", "cmd", "--cores", "12", "--csv", "not-a-number"});
  Parser parser("tool cmd", sample_options());
  std::string error;
  ASSERT_TRUE(parser.parse(argv.argc(), argv.argv(), 2, &error));
  EXPECT_EQ(parser.size_value("--cores"), 12u);
  EXPECT_EQ(parser.double_value("--cores"), 12.0);
  EXPECT_FALSE(parser.size_value("--csv"));
  EXPECT_FALSE(parser.double_value("--csv"));
}

TEST(Parser, LookupOfUndeclaredOptionViolatesTheContract) {
  Argv argv({"tool", "cmd"});
  Parser parser("tool cmd", sample_options());
  std::string error;
  ASSERT_TRUE(parser.parse(argv.argc(), argv.argv(), 2, &error));
  EXPECT_THROW((void)parser.value("--undeclared"), ContractViolation);
  EXPECT_THROW((void)parser.is_set("--undeclared"), ContractViolation);
}

TEST(Parser, UsageListsEveryOptionWithDefaults) {
  Parser parser("tool cmd <arg>", sample_options());
  const std::string usage = parser.usage();
  EXPECT_NE(usage.find("usage: tool cmd <arg> [options]"),
            std::string::npos);
  EXPECT_NE(usage.find("--cores N"), std::string::npos);
  EXPECT_NE(usage.find("[4]"), std::string::npos) << "default shown";
  EXPECT_NE(usage.find("--verbose"), std::string::npos);
}

TEST(Parser, OptionsMustStartWithDashes) {
  EXPECT_THROW(Parser("tool", {{"cores", "N", "", "bad"}}),
               ContractViolation);
}

}  // namespace
}  // namespace mcm::cli
