#include "svc/limiter.hpp"

#include <gtest/gtest.h>

#include "util/contracts.hpp"

namespace mcm::svc {
namespace {

/// Deterministic clock for sleep-free refill tests: the test advances
/// time explicitly.
struct FakeClock {
  double now = 0.0;
  [[nodiscard]] ClockFn fn() {
    return [this] { return now; };
  }
};

TEST(TokenBucket, StartsFullAndDrainsToZero) {
  FakeClock clock;
  TokenBucket bucket({/*capacity=*/3.0, /*refill_per_sec=*/0.0},
                     clock.fn());
  EXPECT_DOUBLE_EQ(bucket.available(), 3.0);
  EXPECT_TRUE(bucket.try_acquire());
  EXPECT_TRUE(bucket.try_acquire());
  EXPECT_TRUE(bucket.try_acquire());
  EXPECT_FALSE(bucket.try_acquire()) << "empty bucket must shed";
  EXPECT_DOUBLE_EQ(bucket.available(), 0.0);
}

TEST(TokenBucket, FailedAcquireTakesNothing) {
  FakeClock clock;
  TokenBucket bucket({1.0, 0.0}, clock.fn());
  EXPECT_FALSE(bucket.try_acquire(2.0));
  EXPECT_TRUE(bucket.try_acquire(1.0)) << "the failed acquire must not "
                                          "have charged the bucket";
}

TEST(TokenBucket, RefillsContinuouslyAtTheConfiguredRate) {
  FakeClock clock;
  TokenBucket bucket({/*capacity=*/4.0, /*refill_per_sec=*/2.0},
                     clock.fn());
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(bucket.try_acquire());
  EXPECT_FALSE(bucket.try_acquire());

  clock.now = 0.5;  // 0.5 s * 2 tokens/s = 1 token
  EXPECT_TRUE(bucket.try_acquire());
  EXPECT_FALSE(bucket.try_acquire());

  clock.now = 0.75;  // fractional tokens accumulate
  EXPECT_DOUBLE_EQ(bucket.available(), 0.5);
  clock.now = 1.0;
  EXPECT_TRUE(bucket.try_acquire());
}

TEST(TokenBucket, RefillNeverExceedsCapacity) {
  FakeClock clock;
  TokenBucket bucket({2.0, 10.0}, clock.fn());
  clock.now = 100.0;
  EXPECT_DOUBLE_EQ(bucket.available(), 2.0);
}

TEST(TokenBucket, NonMonotonicClockStepMintsNothing) {
  FakeClock clock;
  clock.now = 10.0;
  TokenBucket bucket({4.0, 1.0}, clock.fn());
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(bucket.try_acquire());
  clock.now = 5.0;  // clock glitch backwards
  EXPECT_DOUBLE_EQ(bucket.available(), 0.0)
      << "a backwards step must not mint a burst";
  clock.now = 6.0;  // forward progress from the re-anchored epoch
  EXPECT_DOUBLE_EQ(bucket.available(), 1.0);
}

TEST(TokenBucket, OptionsAreValidated) {
  FakeClock clock;
  EXPECT_THROW(TokenBucket({0.0, 1.0}, clock.fn()), ContractViolation);
  EXPECT_THROW(TokenBucket({-1.0, 1.0}, clock.fn()), ContractViolation);
  EXPECT_THROW(TokenBucket({1.0, -1.0}, clock.fn()), ContractViolation);
}

TEST(AdmissionController, ClassesAreIndependent) {
  FakeClock clock;
  AdmissionOptions options;
  options.interactive = {2.0, 0.0};
  options.bulk = {1.0, 0.0};
  AdmissionController admission(options, clock.fn());

  EXPECT_TRUE(admission.admit(TrafficClass::kBulk));
  EXPECT_FALSE(admission.admit(TrafficClass::kBulk))
      << "bulk exhausted its own bucket";
  EXPECT_TRUE(admission.admit(TrafficClass::kInteractive))
      << "interactive is unaffected by bulk exhaustion";
  EXPECT_TRUE(admission.admit(TrafficClass::kInteractive));
  EXPECT_FALSE(admission.admit(TrafficClass::kInteractive));
}

TEST(AdmissionController, BulkRecoversAfterRefill) {
  FakeClock clock;
  AdmissionOptions options;
  options.interactive = {8.0, 16.0};
  options.bulk = {2.0, 1.0};
  AdmissionController admission(options, clock.fn());

  EXPECT_TRUE(admission.admit(TrafficClass::kBulk));
  EXPECT_TRUE(admission.admit(TrafficClass::kBulk));
  EXPECT_FALSE(admission.admit(TrafficClass::kBulk));
  clock.now = 1.0;  // 1 s at 1 token/s
  EXPECT_TRUE(admission.admit(TrafficClass::kBulk));
  EXPECT_FALSE(admission.admit(TrafficClass::kBulk));
}

TEST(AdmissionController, DefaultClockIsUsable) {
  // Smoke only: the injected-clock tests above cover the arithmetic.
  AdmissionController admission;
  EXPECT_TRUE(admission.admit(TrafficClass::kInteractive));
}

}  // namespace
}  // namespace mcm::svc
