#include "svc/protocol.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <csignal>
#include <sstream>
#include <vector>

#include "util/json.hpp"

namespace mcm::svc {
namespace {

// ---------------------------------------------------------------- framing

TEST(Framing, RoundTripsPayloadsIncludingEmbeddedNewlines) {
  const std::vector<std::string> payloads = {
      "{}", "", "line\nbreak", std::string(1000, 'x')};
  for (const std::string& payload : payloads) {
    std::stringstream stream;
    write_frame(stream, payload);
    std::string read;
    std::string error;
    ASSERT_TRUE(read_frame(stream, &read, &error)) << error;
    EXPECT_EQ(read, payload);
  }
}

TEST(Framing, BackToBackFramesStaySeparated) {
  std::stringstream stream;
  write_frame(stream, "first");
  write_frame(stream, "second {\"k\": 1}");
  std::string payload;
  std::string error;
  ASSERT_TRUE(read_frame(stream, &payload, &error));
  EXPECT_EQ(payload, "first");
  ASSERT_TRUE(read_frame(stream, &payload, &error));
  EXPECT_EQ(payload, "second {\"k\": 1}");
  EXPECT_FALSE(read_frame(stream, &payload, &error));
  EXPECT_TRUE(error.empty()) << "clean EOF must not set an error";
}

TEST(Framing, CleanEofReturnsFalseWithoutError) {
  std::stringstream stream;
  std::string payload;
  std::string error = "sentinel";
  EXPECT_FALSE(read_frame(stream, &payload, &error));
  EXPECT_TRUE(error.empty());
}

TEST(Framing, MalformedHeaderSetsError) {
  const std::vector<std::string> inputs = {
      "not-a-number\n{}\n", "-3\nabc\n", "12abc\nxxxxxxxxxxxx\n"};
  for (const std::string& text : inputs) {
    std::stringstream stream(text);
    std::string payload;
    std::string error;
    EXPECT_FALSE(read_frame(stream, &payload, &error)) << text;
    EXPECT_FALSE(error.empty()) << text;
  }
}

TEST(Framing, TruncatedBodySetsError) {
  std::stringstream stream("10\nshort\n");
  std::string payload;
  std::string error;
  EXPECT_FALSE(read_frame(stream, &payload, &error));
  EXPECT_FALSE(error.empty());
}

TEST(Framing, OversizedLengthIsRejectedWithoutAllocating) {
  std::stringstream stream(std::to_string(kMaxFrameBytes + 1) + "\nx\n");
  std::string payload;
  std::string error;
  EXPECT_FALSE(read_frame(stream, &payload, &error));
  EXPECT_FALSE(error.empty());
}

// ----------------------------------------------------- typed fd framing

/// A pipe whose write end feeds read_frame_fd; close_write() simulates
/// the peer vanishing.
struct Pipe {
  int fds[2] = {-1, -1};
  Pipe() { EXPECT_EQ(::pipe(fds), 0); }
  ~Pipe() {
    close_write();
    if (fds[0] >= 0) ::close(fds[0]);
  }
  void feed(const std::string& bytes) {
    ASSERT_EQ(::write(fds[1], bytes.data(), bytes.size()),
              static_cast<ssize_t>(bytes.size()));
  }
  void close_write() {
    if (fds[1] >= 0) {
      ::close(fds[1]);
      fds[1] = -1;
    }
  }
};

TEST(TypedFraming, MalformedFrameCorpusGetsTypedStatuses) {
  struct Case {
    const char* bytes;
    FrameReadStatus status;
  };
  // A zero-length frame ("0\n\n") is a *valid* frame carrying an empty
  // payload — the service layer turns it into a bad-request reply.
  const Case corpus[] = {
      {"0\n\n", FrameReadStatus::kFrame},
      {"not-a-length\n{}\n", FrameReadStatus::kMalformed},
      {"-3\nabc\n", FrameReadStatus::kMalformed},
      {"12abc\nxxxxxxxxxxxx\n", FrameReadStatus::kMalformed},
      {"40\nhalf", FrameReadStatus::kMalformed},  // truncated payload
      {"999999999999999999999\nx\n", FrameReadStatus::kMalformed},
      {"", FrameReadStatus::kEof},
  };
  for (const Case& test : corpus) {
    Pipe pipe;
    pipe.feed(test.bytes);
    pipe.close_write();
    std::string payload;
    std::string error;
    EXPECT_EQ(read_frame_fd(pipe.fds[0], &payload, &error,
                            FrameIoOptions{}),
              test.status)
        << '"' << test.bytes << '"';
    if (test.status != FrameReadStatus::kFrame &&
        test.status != FrameReadStatus::kEof) {
      EXPECT_FALSE(error.empty()) << '"' << test.bytes << '"';
    }
  }
}

TEST(TypedFraming, FrameAboveTheConfiguredLimitIsOversized) {
  Pipe pipe;
  pipe.feed("1024\n");  // bigger than the 16-byte cap below
  FrameIoOptions options;
  options.max_frame_bytes = 16;
  std::string payload;
  std::string error;
  EXPECT_EQ(read_frame_fd(pipe.fds[0], &payload, &error, options),
            FrameReadStatus::kOversized);
  EXPECT_NE(error.find("16-byte limit"), std::string::npos) << error;
}

TEST(TypedFraming, MidFrameStallHitsTheFrameTimeout) {
  Pipe pipe;
  pipe.feed("64\npartial");  // frame started, never finished
  FrameIoOptions options;
  options.frame_timeout_ms = 30;
  std::string payload;
  std::string error;
  EXPECT_EQ(read_frame_fd(pipe.fds[0], &payload, &error, options),
            FrameReadStatus::kStallTimeout);
  EXPECT_NE(error.find("stalled mid-frame"), std::string::npos) << error;
}

TEST(TypedFraming, IdleConnectionHitsTheIdleTimeoutBeforeAnyByte) {
  Pipe pipe;  // nothing written, writer still open
  FrameIoOptions options;
  options.idle_timeout_ms = 30;
  std::string payload;
  std::string error;
  EXPECT_EQ(read_frame_fd(pipe.fds[0], &payload, &error, options),
            FrameReadStatus::kIdleTimeout);
}

TEST(TypedFraming, RoundTripsThroughAnFdPair) {
  Pipe pipe;
  ASSERT_EQ(write_frame_fd(pipe.fds[1], "hello\nframe", FrameIoOptions{}),
            FrameWriteStatus::kOk);
  std::string payload;
  std::string error;
  ASSERT_EQ(read_frame_fd(pipe.fds[0], &payload, &error, FrameIoOptions{}),
            FrameReadStatus::kFrame)
      << error;
  EXPECT_EQ(payload, "hello\nframe");
}

TEST(TypedFraming, WriteToAClosedReaderReportsPeerGoneNotSigpipe) {
  Pipe pipe;
  ::close(pipe.fds[0]);
  pipe.fds[0] = -1;
  // Must not raise SIGPIPE (the write path uses MSG_NOSIGNAL on sockets
  // and the test harness would die on an unhandled signal on pipes).
  signal(SIGPIPE, SIG_IGN);
  EXPECT_EQ(write_frame_fd(pipe.fds[1], "x", FrameIoOptions{}),
            FrameWriteStatus::kPeerGone);
}

// --------------------------------------------------------------- requests

pipeline::ScenarioSpec sample_spec() {
  pipeline::ScenarioSpec spec;
  spec.name = "proto";
  spec.platform = "henri";
  spec.placements = pipeline::PlacementSet::kCalibration;
  return spec;
}

TEST(RequestCodec, RoundTripsEveryWireField) {
  Request request;
  request.id = "r-42";
  request.method = Method::kCalibrate;
  request.traffic_class = TrafficClass::kBulk;
  request.spec = sample_spec();

  const ParsedRequest parsed = parse_request(render_request(request));
  ASSERT_TRUE(parsed.request.has_value()) << parsed.error.message;
  EXPECT_EQ(parsed.request->id, "r-42");
  EXPECT_EQ(parsed.request->method, Method::kCalibrate);
  EXPECT_EQ(parsed.request->traffic_class, TrafficClass::kBulk);
  ASSERT_TRUE(parsed.request->spec.has_value());
  EXPECT_EQ(*parsed.request->spec, sample_spec());
}

TEST(RequestCodec, StatsFormatRoundTrips) {
  Request request;
  request.id = "s";
  request.method = Method::kStats;
  request.stats_format = StatsFormat::kPrometheus;
  const ParsedRequest parsed = parse_request(render_request(request));
  ASSERT_TRUE(parsed.request.has_value()) << parsed.error.message;
  EXPECT_EQ(parsed.request->stats_format, StatsFormat::kPrometheus);
}

TEST(RequestCodec, RejectsUnknownEnvelopeKeys) {
  const ParsedRequest parsed = parse_request(
      R"({"v": 1, "id": "x", "method": "health", "bogus": true})");
  EXPECT_FALSE(parsed.request.has_value());
  EXPECT_EQ(parsed.error.code, ErrorCode::kBadRequest);
  EXPECT_EQ(parsed.id, "x") << "best-effort id for error correlation";
}

TEST(RequestCodec, RejectsWrongVersion) {
  const ParsedRequest parsed =
      parse_request(R"({"v": 2, "id": "x", "method": "health"})");
  EXPECT_FALSE(parsed.request.has_value());
  EXPECT_EQ(parsed.error.code, ErrorCode::kUnsupportedVersion);
}

TEST(RequestCodec, RejectsMissingVersionIdAndMethod) {
  EXPECT_EQ(parse_request(R"({"id": "x", "method": "health"})").error.code,
            ErrorCode::kBadRequest);
  EXPECT_EQ(parse_request(R"({"v": 1, "method": "health"})").error.code,
            ErrorCode::kBadRequest);
  EXPECT_EQ(parse_request(R"({"v": 1, "id": "x"})").error.code,
            ErrorCode::kBadRequest);
}

TEST(RequestCodec, RejectsUnknownMethod) {
  const ParsedRequest parsed =
      parse_request(R"({"v": 1, "id": "x", "method": "frobnicate"})");
  EXPECT_EQ(parsed.error.code, ErrorCode::kUnknownMethod);
}

TEST(RequestCodec, PredictNeedsASpecAndHealthRejectsOne) {
  EXPECT_EQ(
      parse_request(R"({"v": 1, "id": "x", "method": "predict"})")
          .error.code,
      ErrorCode::kBadRequest);
  EXPECT_EQ(parse_request(R"({"v": 1, "id": "x", "method": "health",
                              "spec": {"platform": "henri"}})")
                .error.code,
            ErrorCode::kBadRequest);
}

TEST(RequestCodec, InvalidSpecGetsItsOwnErrorCode) {
  const ParsedRequest parsed = parse_request(
      R"({"v": 1, "id": "x", "method": "predict",
          "spec": {"platform": "henri", "bogus": 1}})");
  EXPECT_FALSE(parsed.request.has_value());
  EXPECT_EQ(parsed.error.code, ErrorCode::kInvalidSpec);
}

TEST(RequestCodec, ClassOnlyOnPipelineMethodsFormatOnlyOnStats) {
  EXPECT_EQ(parse_request(R"({"v": 1, "id": "x", "method": "health",
                              "class": "bulk"})")
                .error.code,
            ErrorCode::kBadRequest);
  EXPECT_EQ(parse_request(R"({"v": 1, "id": "x", "method": "health",
                              "format": "json"})")
                .error.code,
            ErrorCode::kBadRequest);
  const ParsedRequest stats = parse_request(
      R"({"v": 1, "id": "x", "method": "stats", "format": "prometheus"})");
  ASSERT_TRUE(stats.request.has_value()) << stats.error.message;
  EXPECT_EQ(stats.request->stats_format, StatsFormat::kPrometheus);
}

TEST(RequestCodec, NonJsonPayloadIsBadRequest) {
  EXPECT_EQ(parse_request("not json at all").error.code,
            ErrorCode::kBadRequest);
  EXPECT_EQ(parse_request("[1, 2]").error.code, ErrorCode::kBadRequest);
}

TEST(RequestCodec, DeadlineRoundTripsAndDefaultsToNone) {
  Request request;
  request.id = "d1";
  request.method = Method::kPredict;
  request.spec = sample_spec();
  request.deadline_ms = 250.0;
  const ParsedRequest parsed = parse_request(render_request(request));
  ASSERT_TRUE(parsed.request.has_value()) << parsed.error.message;
  EXPECT_EQ(parsed.request->deadline_ms, 250.0);

  // Absent on the wire (and not rendered when 0) = no deadline.
  const ParsedRequest bare =
      parse_request(R"({"v": 1, "id": "x", "method": "health"})");
  ASSERT_TRUE(bare.request.has_value());
  EXPECT_EQ(bare.request->deadline_ms, 0.0);
  request.deadline_ms = 0.0;
  EXPECT_EQ(render_request(request).find("deadline_ms"),
            std::string::npos);
}

TEST(RequestCodec, RejectsNegativeNaNAndNonNumericDeadlines) {
  EXPECT_EQ(parse_request(R"({"v": 1, "id": "x", "method": "health",
                              "deadline_ms": -1})")
                .error.code,
            ErrorCode::kBadRequest);
  EXPECT_EQ(parse_request(R"({"v": 1, "id": "x", "method": "health",
                              "deadline_ms": "soon"})")
                .error.code,
            ErrorCode::kBadRequest);
}

// ---------------------------------------------------------------- replies

TEST(ReplyCodec, ResultReplyRoundTrips) {
  json::Value result = json::parse(R"({"answer": 42})").value();
  const std::string payload = render_result_reply("r1", result);
  std::string error;
  const auto reply = parse_reply(payload, &error);
  ASSERT_TRUE(reply) << error;
  EXPECT_TRUE(reply->ok);
  EXPECT_EQ(reply->id, "r1");
  EXPECT_EQ(reply->result.number_at("answer"), 42.0);
}

TEST(ReplyCodec, ErrorReplyRoundTripsCodeAndMessage) {
  const std::string payload = render_error_reply(
      "r2", {ErrorCode::kOverloaded, "rate limit exceeded", std::string()});
  std::string error;
  const auto reply = parse_reply(payload, &error);
  ASSERT_TRUE(reply) << error;
  EXPECT_FALSE(reply->ok);
  EXPECT_EQ(reply->id, "r2");
  EXPECT_EQ(reply->error.code, ErrorCode::kOverloaded);
  EXPECT_EQ(reply->error.message, "rate limit exceeded");
}

TEST(ReplyCodec, ReplyBytesAreCanonical) {
  // serialize ∘ parse must be the identity on a rendered reply — this is
  // what makes `mcmtool query` output byte-identical to the local
  // `run-scenario --result-json` document.
  json::Value result = json::parse(R"({"b": 1, "a": [1.5, null]})").value();
  const std::string payload = render_result_reply("id", result);
  EXPECT_EQ(json::serialize(json::parse(payload).value()), payload);
}

TEST(ReplyCodec, RejectsNonReplyDocuments) {
  std::string error;
  EXPECT_FALSE(parse_reply("nope", &error));
  EXPECT_FALSE(parse_reply(R"({"ok": true})", &error));
  EXPECT_FALSE(parse_reply(R"({"id": "x", "ok": false, "v": 1})", &error))
      << "error replies must carry an error object";
}

// ---------------------------------------------------------------- batch

ParsedRequest valid_entry(const std::string& id,
                          Method method = Method::kPredict) {
  Request request;
  request.id = id;
  request.method = method;
  request.spec = sample_spec();
  ParsedRequest entry;
  entry.id = id;
  entry.request = std::move(request);
  return entry;
}

TEST(BatchCodec, RoundTripsEntriesWithTheirOwnIdsAndDeadlines) {
  Request batch;
  batch.id = "b1";
  batch.method = Method::kBatch;
  batch.entries.push_back(valid_entry("e1"));
  ParsedRequest second = valid_entry("e2", Method::kCalibrate);
  second.request->traffic_class = TrafficClass::kBulk;
  second.request->deadline_ms = 40.0;
  batch.entries.push_back(std::move(second));

  const ParsedRequest parsed = parse_request(render_request(batch));
  ASSERT_TRUE(parsed.request.has_value()) << parsed.error.message;
  EXPECT_EQ(parsed.request->method, Method::kBatch);
  ASSERT_EQ(parsed.request->entries.size(), 2u);
  const ParsedRequest& first = parsed.request->entries[0];
  ASSERT_TRUE(first.request.has_value()) << first.error.message;
  EXPECT_EQ(first.request->id, "e1");
  EXPECT_EQ(first.request->method, Method::kPredict);
  ASSERT_TRUE(first.request->spec.has_value());
  EXPECT_EQ(*first.request->spec, sample_spec());
  const ParsedRequest& last = parsed.request->entries[1];
  ASSERT_TRUE(last.request.has_value()) << last.error.message;
  EXPECT_EQ(last.request->method, Method::kCalibrate);
  EXPECT_EQ(last.request->traffic_class, TrafficClass::kBulk);
  EXPECT_EQ(last.request->deadline_ms, 40.0);
}

TEST(BatchCodec, EntryFailuresStayPerEntry) {
  // One good entry, one from the future, one missing its spec: the
  // envelope parses and each failure is pinned to its own entry.
  const ParsedRequest parsed = parse_request(
      R"({"v": 1, "id": "b", "method": "batch", "entries": [
          {"v": 1, "id": "good", "method": "predict",
           "spec": {"platform": "henri"}},
          {"v": 2, "id": "future", "method": "predict",
           "spec": {"platform": "henri"}},
          {"v": 1, "id": "nospec", "method": "predict"}]})");
  ASSERT_TRUE(parsed.request.has_value()) << parsed.error.message;
  ASSERT_EQ(parsed.request->entries.size(), 3u);
  EXPECT_TRUE(parsed.request->entries[0].request.has_value());
  EXPECT_FALSE(parsed.request->entries[1].request.has_value());
  EXPECT_EQ(parsed.request->entries[1].error.code,
            ErrorCode::kUnsupportedVersion);
  EXPECT_EQ(parsed.request->entries[1].id, "future")
      << "best-effort id survives for the per-entry error reply";
  EXPECT_FALSE(parsed.request->entries[2].request.has_value());
  EXPECT_EQ(parsed.request->entries[2].error.code, ErrorCode::kBadRequest);
}

TEST(BatchCodec, EntriesMustBePipelineMethodsAndMustNotNest) {
  for (const char* method : {"batch", "stats", "health"}) {
    const ParsedRequest parsed = parse_request(
        std::string(R"({"v": 1, "id": "b", "method": "batch",
                        "entries": [{"v": 1, "id": "e", "method": ")") +
        method + R"("}]})");
    ASSERT_TRUE(parsed.request.has_value())
        << method << ": " << parsed.error.message;
    ASSERT_EQ(parsed.request->entries.size(), 1u) << method;
    const ParsedRequest& entry = parsed.request->entries[0];
    EXPECT_FALSE(entry.request.has_value()) << method;
    EXPECT_NE(entry.error.message.find("predict or calibrate"),
              std::string::npos)
        << method << ": " << entry.error.message;
  }
}

TEST(BatchCodec, BatchLevelValidation) {
  // No entries / wrong shape / empty: batch-level bad-request.
  EXPECT_EQ(parse_request(R"({"v": 1, "id": "b", "method": "batch"})")
                .error.code,
            ErrorCode::kBadRequest);
  EXPECT_EQ(parse_request(
                R"({"v": 1, "id": "b", "method": "batch", "entries": 3})")
                .error.code,
            ErrorCode::kBadRequest);
  EXPECT_EQ(parse_request(
                R"({"v": 1, "id": "b", "method": "batch", "entries": []})")
                .error.code,
            ErrorCode::kBadRequest);
  // `entries` is rejected on every other method.
  EXPECT_EQ(parse_request(R"({"v": 1, "id": "x", "method": "health",
                              "entries": []})")
                .error.code,
            ErrorCode::kBadRequest);
}

TEST(BatchCodec, OversizedBatchesAreRejectedBeforeEntryParsing) {
  std::string payload = R"({"v": 1, "id": "b", "method": "batch",
                            "entries": [)";
  for (std::size_t i = 0; i <= kMaxBatchEntries; ++i) {
    if (i != 0) payload += ',';
    payload += "{}";
  }
  payload += "]}";
  const ParsedRequest parsed = parse_request(payload);
  EXPECT_FALSE(parsed.request.has_value());
  EXPECT_EQ(parsed.error.code, ErrorCode::kBadRequest);
  EXPECT_NE(parsed.error.message.find("limit"), std::string::npos)
      << parsed.error.message;
}

TEST(BatchCodec, DuplicateEntriesKeysAreDeterministicLastOneWins) {
  // The JSON layer resolves duplicate keys with insert_or_assign, so a
  // hostile frame repeating `entries` deterministically keeps the last
  // array — never a blend of the two.
  const ParsedRequest parsed = parse_request(
      R"({"v": 1, "id": "b", "method": "batch",
          "entries": [{"v": 1, "id": "first", "method": "calibrate",
                       "spec": {"platform": "henri"}}],
          "entries": [{"v": 1, "id": "last", "method": "calibrate",
                       "spec": {"platform": "henri"}}]})");
  ASSERT_TRUE(parsed.request.has_value()) << parsed.error.message;
  ASSERT_EQ(parsed.request->entries.size(), 1u);
  ASSERT_TRUE(parsed.request->entries[0].request.has_value());
  EXPECT_EQ(parsed.request->entries[0].request->id, "last");
}

TEST(BatchCodec, TruncatedBatchFrameIsMalformedNotPartiallyParsed) {
  Request batch;
  batch.id = "b";
  batch.method = Method::kBatch;
  batch.entries.push_back(valid_entry("e1"));
  std::stringstream stream;
  write_frame(stream, render_request(batch));
  std::string bytes = stream.str();
  bytes.resize(bytes.size() - 10);  // torn mid-entry
  std::stringstream torn(bytes);
  std::string payload;
  std::string error;
  EXPECT_FALSE(read_frame(torn, &payload, &error));
  EXPECT_FALSE(error.empty());
}

TEST(BatchCodec, ReplyValueFormMatchesRenderedBytesExactly) {
  // reply_to_value is what the batch handler embeds per entry; its
  // serialization must reproduce render_reply byte for byte, and the
  // Value-overload parse_reply must decode the embedded element.
  Reply ok;
  ok.id = "e1";
  ok.ok = true;
  ok.result = json::parse(R"({"b": 1, "a": [1.5, null]})").value();
  Reply bad;
  bad.id = "e2";
  bad.error = {ErrorCode::kInvalidSpec, "bogus key", std::string()};
  for (const Reply& reply : {ok, bad}) {
    EXPECT_EQ(json::serialize(reply_to_value(reply)), render_reply(reply));
    std::string error;
    const std::optional<Reply> round =
        parse_reply(reply_to_value(reply), &error);
    ASSERT_TRUE(round) << error;
    EXPECT_EQ(round->id, reply.id);
    EXPECT_EQ(round->ok, reply.ok);
    if (!reply.ok) {
      EXPECT_EQ(round->error.code, reply.error.code);
    }
  }
}

TEST(EnumSpellings, RoundTrip) {
  for (const Method method : {Method::kPredict, Method::kCalibrate,
                              Method::kStats, Method::kHealth,
                              Method::kBatch}) {
    EXPECT_EQ(parse_method(to_string(method)), method);
  }
  for (const TrafficClass cls :
       {TrafficClass::kInteractive, TrafficClass::kBulk}) {
    EXPECT_EQ(parse_traffic_class(to_string(cls)), cls);
  }
  EXPECT_FALSE(parse_method("bogus"));
  EXPECT_FALSE(parse_traffic_class("bogus"));
}

}  // namespace
}  // namespace mcm::svc
