// Kill-during-save chaos for the persisted calibration cache, at the
// Service level: whatever byte prefix a crash leaves behind, a reviving
// service either loads a complete previous snapshot or rejects the file
// with a typed status and starts cold — never a partial cache.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>

#include "pipeline/spec.hpp"
#include "svc/server.hpp"

namespace mcm::svc {
namespace {

double counter(const Service& service, const std::string& name) {
  const obs::MetricsSnapshot snapshot = service.metrics().snapshot();
  for (const auto& [key, value] : snapshot.counters) {
    if (key == name) return static_cast<double>(value);
  }
  return 0.0;
}

pipeline::ScenarioSpec calibration_spec() {
  pipeline::ScenarioSpec spec;
  spec.name = "chaos-cache";
  spec.platform = "henri";
  spec.placements = pipeline::PlacementSet::kCalibration;
  return spec;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void spill(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

/// A warm service's saved cache file and its bytes.
std::string saved_cache_bytes(const std::string& path) {
  Service service;
  EXPECT_TRUE(
      service.handle_request([] {
        Request request;
        request.id = "warm";
        request.method = Method::kPredict;
        request.spec = calibration_spec();
        return request;
      }())
          .ok);
  std::string error;
  EXPECT_TRUE(service.save_cache_file(path, &error)) << error;
  return slurp(path);
}

TEST(ChaosCache, EveryKillDuringSavePrefixIsRejectedNeverPartial) {
  const std::string path = testing::TempDir() + "mcm-chaos-cache-" +
                           std::to_string(::getpid()) + ".json";
  const std::string full = saved_cache_bytes(path);
  ASSERT_GT(full.size(), 64u);

  // Sample prefixes densely at the edges (header, trailer) and with a
  // stride through the payload — a per-byte sweep of a multi-KB file
  // adds nothing but runtime.
  for (std::size_t keep = 0; keep < full.size();
       keep += (keep < 64 || keep + 64 > full.size()) ? 1 : 37) {
    spill(path, full.substr(0, keep));
    Service revived;
    std::string error;
    const pipeline::CacheFileStatus status =
        revived.load_cache_file(path, &error);
    EXPECT_NE(status, pipeline::CacheFileStatus::kOk)
        << "prefix " << keep << " of " << full.size();
    EXPECT_EQ(revived.cache().size(), 0u)
        << "no partial entries may load (prefix " << keep << ")";
    EXPECT_EQ(counter(revived, "cache.load_rejected"), 1.0)
        << "prefix " << keep;
    EXPECT_FALSE(error.empty()) << "prefix " << keep;
  }

  // The complete file still loads.
  spill(path, full);
  Service revived;
  std::string error;
  EXPECT_EQ(revived.load_cache_file(path, &error),
            pipeline::CacheFileStatus::kOk)
      << error;
  EXPECT_EQ(revived.cache().size(), 1u);
  std::remove(path.c_str());
}

TEST(ChaosCache, CrashBeforeRenameLeavesThePreviousSnapshotLoadable) {
  const std::string path = testing::TempDir() + "mcm-chaos-cache-old-" +
                           std::to_string(::getpid()) + ".json";
  const std::string full = saved_cache_bytes(path);

  // A crash mid-save dies while writing the *temp* file; the real path
  // is untouched until the atomic rename. Simulate the litter.
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  spill(tmp, full.substr(0, full.size() / 2));

  Service revived;
  std::string error;
  EXPECT_EQ(revived.load_cache_file(path, &error),
            pipeline::CacheFileStatus::kOk)
      << error;
  EXPECT_EQ(revived.cache().size(), 1u)
      << "the previous complete snapshot must survive a crashed save";
  EXPECT_EQ(counter(revived, "cache.load_rejected"), 0.0);
  std::remove(tmp.c_str());
  std::remove(path.c_str());
}

TEST(ChaosCache, SaveLoadRoundTripServesWarmPredictions) {
  const std::string path = testing::TempDir() + "mcm-chaos-cache-rt-" +
                           std::to_string(::getpid()) + ".json";
  (void)saved_cache_bytes(path);

  Service revived;
  std::string error;
  ASSERT_EQ(revived.load_cache_file(path, &error),
            pipeline::CacheFileStatus::kOk)
      << error;
  Request request;
  request.id = "warm2";
  request.method = Method::kPredict;
  request.spec = calibration_spec();
  const Reply reply = revived.handle_request(request);
  ASSERT_TRUE(reply.ok) << reply.error.message;
  EXPECT_EQ(reply.result.find("cache_hit")->as_bool(), true);
  EXPECT_EQ(counter(revived, "svc.calibrations"), 0.0)
      << "a persisted calibration must not be recomputed";
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mcm::svc
