// Trace propagation through the service: wire fields, request/queue_wait
// spans, latency instruments and the trace_id echo on error replies.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "obs/trace.hpp"
#include "obs/trace_context.hpp"
#include "pipeline/spec.hpp"
#include "svc/protocol.hpp"
#include "svc/server.hpp"

namespace mcm::svc {
namespace {

pipeline::ScenarioSpec calibration_spec() {
  pipeline::ScenarioSpec spec;
  spec.name = "svc-trace-test";
  spec.platform = "henri";
  spec.placements = pipeline::PlacementSet::kCalibration;
  return spec;
}

Request traced_predict(const std::string& id, std::uint64_t trace_id,
                       std::uint64_t span_id = 0,
                       TrafficClass cls = TrafficClass::kInteractive) {
  Request request;
  request.id = id;
  request.method = Method::kPredict;
  request.traffic_class = cls;
  request.spec = calibration_spec();
  request.trace.trace_id = trace_id;
  request.trace.span_id = span_id;
  return request;
}

/// Step clock: each read advances 1 ms, so every latency sample is a
/// deterministic positive multiple of 1000 µs.
ClockFn step_clock() {
  return [t = std::make_shared<double>(0.0)] {
    *t += 1e-3;
    return *t;
  };
}

// ----------------------------------------------------------------- wire

TEST(Protocol, TraceFieldsRoundTripThroughTheWire) {
  Request request = traced_predict("t1", 0x4d2, 0xabc);
  const std::string payload = render_request(request);
  EXPECT_NE(payload.find("\"trace_id\":\"0000000004d2\""),
            std::string::npos)
      << payload;
  EXPECT_NE(payload.find("\"span_id\":\"000000000abc\""),
            std::string::npos)
      << payload;

  const ParsedRequest parsed = parse_request(payload);
  ASSERT_TRUE(parsed.request.has_value()) << parsed.error.message;
  EXPECT_EQ(parsed.request->trace.trace_id, 0x4d2u);
  EXPECT_EQ(parsed.request->trace.span_id, 0xabcu);
}

TEST(Protocol, UntracedRequestsCarryNoTraceKeys) {
  // The trace fields are an additive v1 extension: default traffic must
  // stay byte-identical to pre-trace builds.
  Request request = traced_predict("t1", 0);
  const std::string payload = render_request(request);
  EXPECT_EQ(payload.find("trace_id"), std::string::npos) << payload;
  EXPECT_EQ(payload.find("span_id"), std::string::npos) << payload;
}

TEST(Protocol, SpanIdAloneRendersNothing) {
  Request request = traced_predict("t1", 0, 0xabc);
  EXPECT_EQ(render_request(request).find("span_id"), std::string::npos);
}

TEST(Protocol, MalformedTraceIdsAreRejected) {
  const char* bad[] = {
      R"({"v": 1, "id": "t", "method": "health", "trace_id": "xyz"})",
      R"({"v": 1, "id": "t", "method": "health", "trace_id": "0000000004D2"})",
      R"({"v": 1, "id": "t", "method": "health", "trace_id": "000000000000"})",
      R"({"v": 1, "id": "t", "method": "health", "trace_id": 1234})",
      R"({"v": 1, "id": "t", "method": "health", "span_id": "0000000004d2"})",
  };
  for (const char* payload : bad) {
    const ParsedRequest parsed = parse_request(payload);
    EXPECT_FALSE(parsed.request.has_value()) << payload;
    EXPECT_EQ(parsed.error.code, ErrorCode::kBadRequest) << payload;
    EXPECT_EQ(parsed.id, "t") << "id survives for error correlation";
  }
}

TEST(Protocol, ErrorRepliesRoundTripTheTraceIdDetail) {
  WireError error{ErrorCode::kOverloaded, "shed", "0000000004d2"};
  const std::string payload = render_error_reply("t1", error);
  EXPECT_NE(payload.find("\"trace_id\":\"0000000004d2\""),
            std::string::npos)
      << payload;
  const auto reply = parse_reply(payload);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->error.trace_id, "0000000004d2");
  // Untraced error replies keep the detail absent entirely.
  EXPECT_EQ(render_error_reply("t2", {ErrorCode::kInternal, "boom",
                                      std::string()})
                .find("trace_id"),
            std::string::npos);
}

// ---------------------------------------------------------------- spans

TEST(ServiceTrace, TracedPredictRecordsTaggedRequestAndQueueWaitSpans) {
  obs::ChromeTraceSink sink;
  ServiceOptions options;
  options.trace = &sink;
  options.clock = step_clock();
  Service service(options);
  ASSERT_TRUE(service.handle_request(traced_predict("p1", 0x4d2, 0xabc)).ok);

  EXPECT_EQ(sink.count("request"), 1u);
  EXPECT_EQ(sink.count("queue_wait"), 1u);
  // The Runner's scenario/stage spans ride the same sink.
  EXPECT_EQ(sink.count("scenario"), 1u);
  EXPECT_GE(sink.count("calibrate"), 1u);
  const std::string json = sink.to_json();
  // Ids ride as exact integers (1234 = 0x4d2, 2748 = 0xabc) on every
  // tagged span.
  EXPECT_NE(json.find("\"trace_id\":1234"), std::string::npos) << json;
  EXPECT_NE(json.find("\"span_id\":2748"), std::string::npos) << json;
}

TEST(ServiceTrace, UntracedRequestsStillRecordSpansWithoutTags) {
  obs::ChromeTraceSink sink;
  ServiceOptions options;
  options.trace = &sink;
  Service service(options);
  ASSERT_TRUE(service.handle_request(traced_predict("p1", 0)).ok);
  EXPECT_EQ(sink.count("request"), 1u);
  EXPECT_EQ(sink.to_json().find("trace_id"), std::string::npos);
}

TEST(ServiceTrace, NoSinkMeansNoSpansAndNoCrash) {
  Service service;
  EXPECT_TRUE(service.handle_request(traced_predict("p1", 0x4d2)).ok);
}

// ------------------------------------------------------------- latencies

TEST(ServiceLatency, PredictPopulatesTheLatencyInstruments) {
  ServiceOptions options;
  options.clock = step_clock();
  Service service(options);
  ASSERT_TRUE(service.handle_request(traced_predict("p1", 0)).ok);
  ASSERT_TRUE(service.handle_request(traced_predict("p2", 0)).ok);

  const obs::MetricsSnapshot snap = service.metrics().snapshot();
  const auto& total = snap.latencies.at(
      "svc.latency.total{class=\"interactive\",method=\"predict\"}");
  EXPECT_EQ(total.count, 2u);
  EXPECT_GT(total.p50_us, 0.0) << "step clock: samples are >= 1000us";
  EXPECT_GE(total.p99_us, total.p50_us);
  EXPECT_GE(total.max_us, total.p99_us);

  EXPECT_EQ(snap.latencies
                .at("svc.latency.queue_wait{class=\"interactive\"}")
                .count,
            2u);
  EXPECT_EQ(snap.latencies.at("svc.latency.predict").count, 2u);
  // The second request was a cache hit: its zero-cost calibrate stage
  // must not blur the real calibration cost distribution.
  EXPECT_EQ(snap.latencies.at("svc.latency.calibrate").count, 1u);
  // The bulk/calibrate variants exist (pre-registered) but stay empty.
  EXPECT_EQ(snap.latencies
                .at("svc.latency.total{class=\"bulk\",method=\"predict\"}")
                .count,
            0u);
  // In-flight gauge is back to zero between requests.
  EXPECT_EQ(snap.gauges.at("svc.inflight"), 0.0);
}

TEST(ServiceLatency, StatsReplyReportsQuantiles) {
  ServiceOptions options;
  options.clock = step_clock();
  Service service(options);
  ASSERT_TRUE(service.handle_request(traced_predict("p1", 0)).ok);
  Request stats;
  stats.id = "s1";
  stats.method = Method::kStats;
  const Reply reply = service.handle_request(stats);
  ASSERT_TRUE(reply.ok);
  const json::Value* latencies = reply.result.find("latencies");
  ASSERT_NE(latencies, nullptr);
  const json::Value* total = latencies->find(
      "svc.latency.total{class=\"interactive\",method=\"predict\"}");
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(total->number_at("count"), 1.0);
  EXPECT_GT(total->number_at("p50_us").value_or(0.0), 0.0);
  EXPECT_GT(total->number_at("p95_us").value_or(0.0), 0.0);
  EXPECT_GT(total->number_at("p99_us").value_or(0.0), 0.0);

  Request prom;
  prom.id = "s2";
  prom.method = Method::kStats;
  prom.stats_format = StatsFormat::kPrometheus;
  const Reply prom_reply = service.handle_request(prom);
  ASSERT_TRUE(prom_reply.ok);
  const std::string& text =
      prom_reply.result.find("prometheus")->as_string();
  EXPECT_NE(text.find("mcm_svc_latency_total_bucket"), std::string::npos)
      << text;
  EXPECT_NE(text.find("mcm_svc_latency_total_p99_us"), std::string::npos)
      << text;
  EXPECT_NE(text.find("class=\"interactive\""), std::string::npos) << text;
}

// ------------------------------------------------------------ error echo

TEST(ServiceTrace, ShedRepliesEchoTheTraceId) {
  ServiceOptions options;
  options.admission.bulk = {1.0, 0.0};
  options.clock = [] { return 0.0; };  // frozen: no refill
  Service service(options);
  ASSERT_TRUE(service
                  .handle_request(traced_predict("b1", 0x4d2, 0,
                                                 TrafficClass::kBulk))
                  .ok);
  const Reply shed = service.handle_request(
      traced_predict("b2", 0x4d2, 0, TrafficClass::kBulk));
  ASSERT_FALSE(shed.ok);
  EXPECT_EQ(shed.error.code, ErrorCode::kOverloaded);
  EXPECT_EQ(shed.error.trace_id, "0000000004d2");
}

TEST(ServiceTrace, DeadlineRepliesEchoTheTraceId) {
  ServiceOptions options;
  options.clock = [t = std::make_shared<double>(0.0)] {
    *t += 10.0;  // each read jumps 10 s: the budget is gone on arrival
    return *t;
  };
  Service service(options);
  Request request = traced_predict("d1", 0x4d2);
  request.deadline_ms = 1000.0;
  const Reply reply = service.handle_request(request);
  ASSERT_FALSE(reply.ok);
  EXPECT_EQ(reply.error.code, ErrorCode::kDeadlineExceeded);
  EXPECT_EQ(reply.error.trace_id, "0000000004d2");
}

TEST(ServiceTrace, UntracedErrorsCarryNoTraceId) {
  ServiceOptions options;
  options.admission.bulk = {1.0, 0.0};
  options.clock = [] { return 0.0; };
  Service service(options);
  ASSERT_TRUE(service
                  .handle_request(
                      traced_predict("b1", 0, 0, TrafficClass::kBulk))
                  .ok);
  const Reply shed = service.handle_request(
      traced_predict("b2", 0, 0, TrafficClass::kBulk));
  ASSERT_FALSE(shed.ok);
  EXPECT_TRUE(shed.error.trace_id.empty());
}

}  // namespace
}  // namespace mcm::svc
