// Shm-transport chaos (docs/service.md): the server killed out from
// under an in-flight batch, and seeded mailbox fault plans — delivery
// under delays, and a fault-starved wait tripping the client deadline.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "pipeline/spec.hpp"
#include "svc/client.hpp"
#include "svc/shm.hpp"

namespace mcm::svc {
namespace {

pipeline::ScenarioSpec calibration_spec() {
  pipeline::ScenarioSpec spec;
  spec.name = "chaos-shm";
  spec.platform = "henri";
  spec.placements = pipeline::PlacementSet::kCalibration;
  return spec;
}

Request predict_request(const std::string& id) {
  Request request;
  request.id = id;
  request.method = Method::kPredict;
  request.spec = calibration_spec();
  return request;
}

TEST(ChaosShm, KillMidBatchSurfacesATypedTransportFailure) {
  // The batch's calibration leader parks inside the service; the server
  // is killed out from under it. The blocked client must unwind with a
  // typed peer-gone transport failure — not a hang, not a garbled reply.
  std::promise<void> in_flight;
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  std::atomic<bool> parked{false};
  ServiceOptions options;
  options.on_leader_start = [&in_flight, released, &parked] {
    if (!parked.exchange(true)) {
      in_flight.set_value();
      released.wait();
    }
  };
  Service service(options);
  ShmServer server(service);
  server.start();
  ShmClient client(server);

  std::vector<Request> entries = {predict_request("e1"),
                                  predict_request("e2")};
  std::optional<Reply> reply;
  std::string error;
  std::thread caller([&] {
    reply = client.call(Client::make_batch("b", std::move(entries)),
                        &error);
  });
  in_flight.get_future().wait();  // the batch is mid-calibration
  // kill() marks both ranks gone immediately (waking the client), then
  // blocks joining the serving thread — which is parked until released.
  std::thread killer([&server] { server.kill(); });
  caller.join();
  EXPECT_FALSE(reply.has_value())
      << "no deadline was set: the kill is a transport failure, not a "
         "timeout";
  EXPECT_NE(error.find("peer-gone"), std::string::npos) << error;
  EXPECT_FALSE(client.usable());
  release.set_value();
  killer.join();
}

TEST(ChaosShm, SeededDelayPlanStillDeliversEveryFrameInOrder) {
  // Half the mailbox messages ride a 2ms wire delay (seeded, so the
  // schedule is reproducible); FIFO per (source, tag) must keep frame
  // halves adjacent and replies byte-identical to the fault-free path.
  ShmTransportOptions transport;
  transport.faults.seed = 7;
  transport.faults.delay_probability = 0.5;
  transport.faults.delay = Seconds{0.002};

  Service serial;
  Service service;
  ShmServer server(service, transport);
  server.start();
  ShmClient client(server);
  for (int i = 1; i <= 4; ++i) {
    const std::string payload =
        render_request(predict_request("d" + std::to_string(i)));
    std::string error;
    const std::optional<std::string> reply =
        client.roundtrip(payload, &error);
    ASSERT_TRUE(reply.has_value()) << error;
    EXPECT_EQ(*reply, serial.handle(payload)) << "request " << i;
  }
  server.stop();
  EXPECT_EQ(server.served(), 4u);
}

TEST(ChaosShm, AFaultStarvedWaitTripsTheClientDeadline) {
  // Every message is delayed far past the budget: the bounded wait must
  // surface the typed deadline reply instead of blocking on the late
  // frame, and the stream is poisoned afterwards.
  ShmTransportOptions transport;
  transport.faults.seed = 11;
  transport.faults.delay_probability = 1.0;
  transport.faults.delay = Seconds{30.0};

  Service service;
  ShmServer server(service, transport);
  server.start();
  ShmClient client(server);
  std::string error;
  const std::optional<Reply> reply =
      client.call(predict_request("late"), &error, /*deadline_ms=*/50.0);
  ASSERT_TRUE(reply.has_value()) << error;
  EXPECT_FALSE(reply->ok);
  EXPECT_EQ(reply->error.code, ErrorCode::kDeadlineExceeded);
  EXPECT_FALSE(client.usable());
  server.stop();
}

}  // namespace
}  // namespace mcm::svc
