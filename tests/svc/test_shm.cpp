// The mcm::net shared-memory transport of the prediction service
// (docs/service.md, "Batching and the shm transport"): frame grammar
// over rank-pair mailboxes, byte-identity with the in-process service,
// typed deadline replies and the terminal desync semantics.
#include "svc/shm.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <future>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "pipeline/spec.hpp"
#include "svc/client.hpp"
#include "util/json.hpp"

namespace mcm::svc {
namespace {

pipeline::ScenarioSpec calibration_spec(const std::string& platform =
                                            "henri") {
  pipeline::ScenarioSpec spec;
  spec.name = "shm-test";
  spec.platform = platform;
  spec.placements = pipeline::PlacementSet::kCalibration;
  return spec;
}

Request predict_request(const std::string& id) {
  Request request;
  request.id = id;
  request.method = Method::kPredict;
  request.spec = calibration_spec();
  return request;
}

Request health_request(const std::string& id) {
  Request request;
  request.id = id;
  request.method = Method::kHealth;
  return request;
}

double counter_value(const Service& service, const std::string& name) {
  const obs::MetricsSnapshot snapshot = service.metrics().snapshot();
  for (const auto& [key, value] : snapshot.counters) {
    if (key == name) return static_cast<double>(value);
  }
  return 0.0;
}

TEST(ShmTransport, RoundtripBytesMatchTheInProcessServiceExactly) {
  Service shm_service;
  ShmServer server(shm_service);
  server.start();
  ShmClient client(server);

  // A cold twin service answers the same payloads in-process: replies
  // crossing the mailbox transport must be the same canonical bytes.
  Service serial;
  const std::vector<std::string> payloads = {
      render_request(health_request("h1")),
      render_request(predict_request("p1")),
      render_request(predict_request("p2")),  // the cache hit too
  };
  for (const std::string& payload : payloads) {
    std::string error;
    const std::optional<std::string> reply =
        client.roundtrip(payload, &error);
    ASSERT_TRUE(reply.has_value()) << error;
    EXPECT_EQ(*reply, serial.handle(payload));
  }
  EXPECT_TRUE(client.usable());
  server.stop();
  server.stop();  // idempotent
  EXPECT_EQ(server.served(), 3u);

  // Terminal after stop: the next call fails with a typed transport
  // error instead of hanging on a rank that will never answer.
  std::string error;
  EXPECT_FALSE(
      client.roundtrip(render_request(health_request("h2")), &error)
          .has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(client.usable());
}

TEST(ShmTransport, BatchOverShmMatchesSerialServiceBytes) {
  Service serial;
  std::vector<std::string> expected;
  for (int i = 1; i <= 3; ++i) {
    const Reply reply =
        serial.handle_request(predict_request("q" + std::to_string(i)));
    ASSERT_TRUE(reply.ok) << reply.error.message;
    expected.push_back(render_reply(reply));
  }

  Service service;
  ShmServer server(service);
  server.start();
  ShmClient client(server);
  std::vector<Request> entries;
  for (int i = 1; i <= 3; ++i) {
    entries.push_back(predict_request("q" + std::to_string(i)));
  }
  std::string error;
  const std::optional<Reply> batch =
      client.call(Client::make_batch("b", std::move(entries)), &error);
  ASSERT_TRUE(batch.has_value()) << error;
  ASSERT_TRUE(batch->ok) << batch->error.message;
  const json::Value::Array& array =
      batch->result.find("replies")->as_array();
  ASSERT_EQ(array.size(), 3u);
  for (std::size_t i = 0; i < array.size(); ++i) {
    EXPECT_EQ(json::serialize(array[i]), expected[i]) << "entry " << i;
  }
  EXPECT_EQ(counter_value(service, "svc.calibrations"), 1.0);
  EXPECT_EQ(counter_value(service, "svc.batch.requests"), 1.0);
  server.stop();
}

TEST(ShmTransport, CallSynthesizesTheTypedDeadlineReply) {
  // Park the calibration leader so the reply cannot arrive in time; the
  // client must synthesize the same typed deadline-exceeded reply the
  // server uses, and the desynced stream must then fail fast.
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  ServiceOptions options;
  options.on_leader_start = [released] { released.wait(); };
  Service service(options);
  ShmServer server(service);
  server.start();
  ShmClient client(server);

  std::string error;
  const std::optional<Reply> reply =
      client.call(predict_request("slow"), &error, /*deadline_ms=*/50.0);
  ASSERT_TRUE(reply.has_value()) << error;
  EXPECT_FALSE(reply->ok);
  EXPECT_EQ(reply->id, "slow");
  EXPECT_EQ(reply->error.code, ErrorCode::kDeadlineExceeded);
  EXPECT_FALSE(client.usable())
      << "the late reply would desync every future call";
  std::string desync_error;
  EXPECT_FALSE(client
                   .roundtrip(render_request(health_request("h")),
                              &desync_error)
                   .has_value());
  EXPECT_FALSE(desync_error.empty());
  release.set_value();
  server.stop();
}

TEST(ShmTransport, MalformedHeaderGetsATypedGoodbye) {
  Service service;
  ShmServer server(service);
  server.start();
  // Speak raw mailbox messages: a header that is not a length line must
  // be answered with one typed bad-request reply before the stream ends.
  net::Communicator& comm = server.world().comm(1);
  const std::string bad = "nope\n";
  comm.send(0, kRequestFrame,
            std::span<const std::byte>(
                reinterpret_cast<const std::byte*>(bad.data()),
                bad.size()));
  char header[32];
  net::Request hreq = comm.irecv(
      0, kReplyFrame,
      std::span<std::byte>(reinterpret_cast<std::byte*>(header),
                           sizeof header));
  comm.wait(hreq);
  const std::string header_text(header, hreq.transferred());
  const std::size_t length = std::stoul(header_text);
  std::string body(length + 1, '\0');
  net::Request breq = comm.irecv(
      0, kReplyFrame,
      std::span<std::byte>(reinterpret_cast<std::byte*>(body.data()),
                           body.size()));
  comm.wait(breq);
  ASSERT_EQ(breq.transferred(), length + 1);
  ASSERT_EQ(body.back(), '\n');
  body.pop_back();
  std::string parse_error;
  const std::optional<Reply> reply = parse_reply(body, &parse_error);
  ASSERT_TRUE(reply) << parse_error;
  EXPECT_FALSE(reply->ok);
  EXPECT_EQ(reply->error.code, ErrorCode::kBadRequest);
  server.stop();  // joins the serving thread before reading its counter
  EXPECT_EQ(server.served(), 1u) << "the goodbye counts as a reply";
}

}  // namespace
}  // namespace mcm::svc
