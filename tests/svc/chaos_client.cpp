// Client-side resilience chaos: reconnect after a server restart,
// retry/backoff against sheds, the non-idempotent no-retry guard, and
// the synthesized client-side deadline reply (docs/service.md).
#include <gtest/gtest.h>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "pipeline/spec.hpp"
#include "svc/client.hpp"
#include "svc/server.hpp"

namespace mcm::svc {
namespace {

double counter(const Service& service, const std::string& name) {
  const obs::MetricsSnapshot snapshot = service.metrics().snapshot();
  for (const auto& [key, value] : snapshot.counters) {
    if (key == name) return static_cast<double>(value);
  }
  return 0.0;
}

std::string unique_path(const std::string& tag) {
  return "/tmp/mcm-chaosc-" + tag + "-" + std::to_string(::getpid()) +
         ".sock";
}

pipeline::ScenarioSpec calibration_spec() {
  pipeline::ScenarioSpec spec;
  spec.name = "chaos-client";
  spec.platform = "henri";
  spec.placements = pipeline::PlacementSet::kCalibration;
  return spec;
}

/// A server that accepts connections and never replies — the black hole
/// every timeout path falls into. Counts accepted connections so tests
/// can assert how many attempts actually reached it.
class BlackHole {
 public:
  explicit BlackHole(const std::string& path) : path_(path) {
    ::unlink(path.c_str());
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    EXPECT_EQ(::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr)),
              0);
    EXPECT_EQ(::listen(listen_fd_, 8), 0);
    acceptor_ = std::thread([this] {
      while (!stopping_.load()) {
        pollfd pfd{listen_fd_, POLLIN, 0};
        if (::poll(&pfd, 1, 50) <= 0) continue;
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) continue;
        accepted_.fetch_add(1);
        held_.push_back(fd);  // keep open, never reply
      }
    });
  }
  ~BlackHole() {
    stopping_.store(true);
    acceptor_.join();
    for (const int fd : held_) ::close(fd);
    ::close(listen_fd_);
    ::unlink(path_.c_str());
  }

  [[nodiscard]] int accepted() const { return accepted_.load(); }

 private:
  std::string path_;
  int listen_fd_ = -1;
  std::thread acceptor_;
  std::atomic<bool> stopping_{false};
  std::atomic<int> accepted_{0};
  std::vector<int> held_;
};

TEST(ChaosClient, ReconnectsAfterTheServerRestarts) {
  Service service;
  const std::string path = unique_path("restart");
  std::string error;

  auto server1 = std::make_unique<SocketServer>(
      service, SocketServerOptions{path});
  ASSERT_TRUE(server1->start(&error)) << error;
  auto client = Client::connect(path, &error);
  ASSERT_TRUE(client) << error;
  ASSERT_TRUE(client->health(&error)) << error;

  // The server dies and comes back on the same path; the client's old
  // connection is dead.
  server1->stop();
  SocketServer server2(service, SocketServerOptions{path});
  ASSERT_TRUE(server2.start(&error)) << error;

  Request request;
  request.method = Method::kHealth;
  CallOptions call;
  call.retry.max_retries = 2;
  call.retry_pause_ms = 5.0;
  const auto reply = client->call(std::move(request), call, &error);
  ASSERT_TRUE(reply) << error;
  EXPECT_TRUE(reply->ok) << "retry must reconnect to the new server";
  server2.stop();
}

TEST(ChaosClient, ShedsAreRetriedAndTheLastShedIsReturned) {
  ServiceOptions options;
  options.admission.bulk = {1.0, 0.0};  // one token, never refilled
  options.clock = [] { return 0.0; };
  Service service(options);
  const std::string path = unique_path("shed");
  SocketServer server(service, SocketServerOptions{path});
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  auto client = Client::connect(path, &error);
  ASSERT_TRUE(client) << error;

  // The only bulk token.
  const auto first = client->predict(calibration_spec(),
                                     TrafficClass::kBulk, &error);
  ASSERT_TRUE(first) << error;
  ASSERT_TRUE(first->ok) << first->error.message;

  Request request;
  request.method = Method::kPredict;
  request.traffic_class = TrafficClass::kBulk;
  request.spec = calibration_spec();
  CallOptions call;
  call.retry.max_retries = 2;
  call.retry_pause_ms = 1.0;
  const auto shed = client->call(std::move(request), call, &error);
  ASSERT_TRUE(shed) << error;
  EXPECT_FALSE(shed->ok);
  EXPECT_EQ(shed->error.code, ErrorCode::kOverloaded)
      << "exhausted retries surface the last shed, not a transport error";
  EXPECT_EQ(counter(service, "svc.shed"), 3.0)
      << "every attempt reached the server and was shed";
  server.stop();
}

TEST(ChaosClient, NonIdempotentRequestsAreNeverRetriedAfterSend) {
  const std::string path = unique_path("noretry");
  BlackHole hole(path);
  std::string error;
  auto client = Client::connect(path, &error);
  ASSERT_TRUE(client) << error;

  Request request;
  request.method = Method::kHealth;
  CallOptions call;
  call.retry.timeout = Seconds{0.05};
  call.retry.max_retries = 3;
  call.idempotent = false;
  const auto reply = client->call(std::move(request), call, &error);
  EXPECT_FALSE(reply) << "a swallowed non-idempotent request must fail";
  EXPECT_NE(error.find("non-idempotent"), std::string::npos) << error;
  EXPECT_EQ(hole.accepted(), 1)
      << "the request must not have been replayed";
}

TEST(ChaosClient, ClientDeadlineSynthesizesTheTypedReply) {
  const std::string path = unique_path("deadline");
  BlackHole hole(path);
  std::string error;
  auto client = Client::connect(path, &error);
  ASSERT_TRUE(client) << error;

  Request request;
  request.id = "dl";
  request.method = Method::kHealth;
  CallOptions call;
  call.deadline_ms = 150.0;
  call.retry.timeout = Seconds{0.05};
  call.retry.max_retries = 50;  // the deadline, not the count, ends it
  call.retry_pause_ms = 1.0;
  const auto reply = client->call(std::move(request), call, &error);
  ASSERT_TRUE(reply) << error;
  EXPECT_FALSE(reply->ok);
  EXPECT_EQ(reply->id, "dl");
  EXPECT_EQ(reply->error.code, ErrorCode::kDeadlineExceeded);
  EXPECT_NE(reply->error.message.find("client deadline"),
            std::string::npos)
      << reply->error.message;
}

TEST(ChaosClient, BackoffPauseOverflowIsClampedSoHugeRetryBudgetsReturn) {
  // Regression: retry_pause_ms * backoff^attempt overflows to inf within
  // a few hundred attempts for any backoff > 1; unclamped, that inf
  // became an unbounded sleep. With the max_retry_pause_ms clamp, even a
  // 400-retry budget against a vanished server is milliseconds of pause.
  Service service;
  const std::string path = unique_path("clamp");
  std::string error;
  auto server = std::make_unique<SocketServer>(
      service, SocketServerOptions{path});
  ASSERT_TRUE(server->start(&error)) << error;
  auto client = Client::connect(path, &error);
  ASSERT_TRUE(client) << error;
  server->stop();
  server.reset();  // the server is gone: every reconnect attempt fails

  Request request;
  request.method = Method::kHealth;
  CallOptions call;
  call.retry.max_retries = 400;  // pow(10, 309) is inf — attempt ~309 on
  call.retry.backoff = 10.0;     // the pre-clamp path slept forever
  call.retry_pause_ms = 1e-3;
  call.max_retry_pause_ms = 0.01;
  const auto start = std::chrono::steady_clock::now();
  const auto reply = client->call(std::move(request), call, &error);
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start)
          .count();
  EXPECT_FALSE(reply) << "no server came back: retries must exhaust";
  EXPECT_LT(elapsed_s, 30.0)
      << "400 clamped pauses are milliseconds, not an infinite sleep";
}

TEST(ChaosClient, AttemptBudgetOverflowIsClampedBeforeTheIntCast) {
  // Regression: the per-attempt reply budget grows by the same
  // backoff^attempt factor; unclamped it overflowed to inf and was cast
  // to int — undefined behavior (UBSan traps it). max_attempt_ms caps
  // the wait, so the black-holed call returns after ~50ms per attempt.
  const std::string path = unique_path("budget");
  BlackHole hole(path);
  std::string error;
  auto client = Client::connect(path, &error);
  ASSERT_TRUE(client) << error;

  Request request;
  request.method = Method::kHealth;
  CallOptions call;
  call.retry.timeout = Seconds{1e-9};
  call.retry.backoff = 1e308;  // attempt 1's budget is inf pre-clamp
  call.retry.max_retries = 1;
  call.retry_pause_ms = 1.0;
  call.max_attempt_ms = 50.0;
  const auto start = std::chrono::steady_clock::now();
  const auto reply = client->call(std::move(request), call, &error);
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start)
          .count();
  EXPECT_FALSE(reply) << "the black hole never answers";
  EXPECT_FALSE(error.empty());
  EXPECT_LT(elapsed_s, 10.0)
      << "the inf attempt budget must clamp to max_attempt_ms";
}

}  // namespace
}  // namespace mcm::svc
