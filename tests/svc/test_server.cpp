#include "svc/server.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <future>
#include <iterator>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "pipeline/result_io.hpp"
#include "pipeline/runner.hpp"
#include "svc/client.hpp"
#include "util/json.hpp"

namespace mcm::svc {
namespace {

pipeline::ScenarioSpec calibration_spec(const std::string& platform =
                                            "henri") {
  pipeline::ScenarioSpec spec;
  spec.name = "svc-test";
  spec.platform = platform;
  spec.placements = pipeline::PlacementSet::kCalibration;
  return spec;
}

Request simple_request(const std::string& id, Method method) {
  Request request;
  request.id = id;
  request.method = method;
  return request;
}

Request predict_request(const pipeline::ScenarioSpec& spec,
                        const std::string& id,
                        TrafficClass cls = TrafficClass::kInteractive) {
  Request request;
  request.id = id;
  request.method = Method::kPredict;
  request.traffic_class = cls;
  request.spec = spec;
  return request;
}

double counter(const Service& service, const std::string& name) {
  const obs::MetricsSnapshot snapshot = service.metrics().snapshot();
  for (const auto& [key, value] : snapshot.counters) {
    if (key == name) return static_cast<double>(value);
  }
  return 0.0;
}

TEST(ShardedCache, FingerprintsSpreadDeterministically) {
  ShardedCalibrationCache cache(4);
  EXPECT_EQ(cache.shard_count(), 4u);
  const std::size_t index = cache.shard_index("some-fingerprint");
  EXPECT_LT(index, 4u);
  EXPECT_EQ(cache.shard_index("some-fingerprint"), index)
      << "same fingerprint, same shard";
  EXPECT_EQ(cache.size(), 0u);
}

TEST(Service, HealthReportsProtocolVersion) {
  Service service;
  const Reply reply = service.handle_request(
      simple_request("h1", Method::kHealth));
  ASSERT_TRUE(reply.ok) << reply.error.message;
  EXPECT_EQ(reply.id, "h1");
  EXPECT_EQ(reply.result.number_at("protocol"), 1.0);
  EXPECT_EQ(reply.result.string_at("status"), "ok");
}

TEST(Service, ColdPredictMatchesDirectRunnerBytes) {
  Service service;
  const Reply reply =
      service.handle_request(predict_request(calibration_spec(), "p1"));
  ASSERT_TRUE(reply.ok) << reply.error.message;

  pipeline::Runner runner;
  const std::string local =
      pipeline::result_to_json(runner.run(calibration_spec()));
  EXPECT_EQ(json::serialize(reply.result), local)
      << "service predict must be byte-identical to result_to_json";
}

TEST(Service, SecondIdenticalPredictIsServedFromTheShardedCache) {
  Service service;
  const Reply first =
      service.handle_request(predict_request(calibration_spec(), "p1"));
  const Reply second =
      service.handle_request(predict_request(calibration_spec(), "p2"));
  ASSERT_TRUE(first.ok && second.ok);
  EXPECT_EQ(first.result.find("cache_hit")->as_bool(), false);
  EXPECT_EQ(second.result.find("cache_hit")->as_bool(), true);

  EXPECT_EQ(counter(service, "svc.calibrations"), 1.0);
  EXPECT_EQ(service.cache().size(), 1u);
  const std::size_t shard =
      service.cache().shard_index(calibration_spec().fingerprint());
  const std::string prefix =
      "svc.cache.shard" + std::to_string(shard) + ".";
  EXPECT_EQ(counter(service, prefix + "misses"), 1.0);
  EXPECT_EQ(counter(service, prefix + "hits"), 1.0);
}

TEST(Service, CalibrateWarmsExactlyPredictsCacheEntry) {
  Service service;
  Request calibrate = predict_request(calibration_spec(), "c1");
  calibrate.method = Method::kCalibrate;
  const Reply warm = service.handle_request(calibrate);
  ASSERT_TRUE(warm.ok) << warm.error.message;
  EXPECT_EQ(warm.result.find("cache_hit")->as_bool(), false);
  EXPECT_EQ(warm.result.string_at("fingerprint"),
            calibration_spec().fingerprint());

  const Reply predict =
      service.handle_request(predict_request(calibration_spec(), "p1"));
  ASSERT_TRUE(predict.ok);
  EXPECT_EQ(predict.result.find("cache_hit")->as_bool(), true)
      << "predict after calibrate must hit the cache";
  EXPECT_EQ(counter(service, "svc.calibrations"), 1.0);
}

TEST(Service, ConcurrentIdenticalRequestsRunExactlyOneCalibration) {
  Service service;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<Reply> replies(kThreads);
  std::atomic<int> failures{0};
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      replies[i] = service.handle_request(predict_request(
          calibration_spec(), "t" + std::to_string(i)));
      if (!replies[i].ok) failures.fetch_add(1);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);

  // Exactly one calibration executed, however the threads interleaved;
  // the others coalesced onto the leader's flight or hit the shard
  // afterwards.
  EXPECT_EQ(counter(service, "svc.calibrations"), 1.0);
  EXPECT_EQ(counter(service, "pipeline.cache.misses"), 1.0);
  EXPECT_EQ(service.cache().size(), 1u);
  // Every reply carries the same model parameters.
  const std::string params =
      json::serialize(*replies[0].result.find("local"));
  for (const Reply& reply : replies) {
    EXPECT_EQ(json::serialize(*reply.result.find("local")), params);
  }
}

TEST(Service, DistinctSpecsDoNotCoalesce) {
  Service service;
  pipeline::ScenarioSpec other = calibration_spec();
  other.repetitions = 2;  // fingerprint-relevant
  const Reply a =
      service.handle_request(predict_request(calibration_spec(), "a"));
  const Reply b = service.handle_request(predict_request(other, "b"));
  ASSERT_TRUE(a.ok && b.ok);
  EXPECT_EQ(counter(service, "svc.calibrations"), 2.0);
  EXPECT_EQ(service.cache().size(), 2u);
}

TEST(Service, OverRateBulkShedsWhileInteractiveSucceeds) {
  ServiceOptions options;
  options.admission.interactive = {8.0, 0.0};
  options.admission.bulk = {1.0, 0.0};
  options.clock = [] { return 0.0; };  // frozen: no refill
  Service service(options);

  const pipeline::ScenarioSpec spec = calibration_spec();
  const Reply bulk_ok = service.handle_request(
      predict_request(spec, "b1", TrafficClass::kBulk));
  ASSERT_TRUE(bulk_ok.ok) << bulk_ok.error.message;

  const Reply bulk_shed = service.handle_request(
      predict_request(spec, "b2", TrafficClass::kBulk));
  ASSERT_FALSE(bulk_shed.ok);
  EXPECT_EQ(bulk_shed.error.code, ErrorCode::kOverloaded);

  const Reply interactive = service.handle_request(
      predict_request(spec, "i1", TrafficClass::kInteractive));
  EXPECT_TRUE(interactive.ok)
      << "interactive must ride through bulk exhaustion";

  EXPECT_EQ(counter(service, "svc.shed"), 1.0);
  EXPECT_EQ(counter(service, "svc.errors"), 0.0)
      << "sheds are not internal errors";
}

TEST(Service, ShedRequestsDoNotTouchTheCacheOrRunner) {
  ServiceOptions options;
  options.admission.bulk = {1.0, 0.0};
  options.clock = [] { return 0.0; };
  Service service(options);
  ASSERT_TRUE(service
                  .handle_request(predict_request(calibration_spec(), "b1",
                                                  TrafficClass::kBulk))
                  .ok);
  ASSERT_FALSE(service
                   .handle_request(predict_request(calibration_spec(),
                                                   "b2",
                                                   TrafficClass::kBulk))
                   .ok);
  EXPECT_EQ(counter(service, "pipeline.runs"), 1.0);
}

TEST(Service, StatsExposesCountersCacheGeometryAndPrometheus) {
  Service service;
  (void)service.handle_request(
      predict_request(calibration_spec(), "p1"));
  const Reply json_stats = service.handle_request(
      simple_request("s1", Method::kStats));
  ASSERT_TRUE(json_stats.ok);
  EXPECT_EQ(json_stats.result.number_at("cache_entries"), 1.0);
  EXPECT_EQ(json_stats.result.number_at("cache_shards"), 8.0);
  const json::Value* counters = json_stats.result.find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->number_at("svc.requests"), 2.0)
      << "the predict and the stats request itself are both counted";

  Request prom;
  prom.id = "s2";
  prom.method = Method::kStats;
  prom.stats_format = StatsFormat::kPrometheus;
  const Reply prom_stats = service.handle_request(prom);
  ASSERT_TRUE(prom_stats.ok);
  const json::Value* text = prom_stats.result.find("prometheus");
  ASSERT_NE(text, nullptr);
  EXPECT_NE(text->as_string().find("svc_requests"), std::string::npos);
}

TEST(Service, MalformedPayloadsBecomeErrorRepliesNotThrows) {
  Service service;
  const std::string reply_payload = service.handle("garbage");
  const auto reply = parse_reply(reply_payload);
  ASSERT_TRUE(reply);
  EXPECT_FALSE(reply->ok);
  EXPECT_EQ(reply->error.code, ErrorCode::kBadRequest);
  EXPECT_EQ(counter(service, "svc.requests"), 1.0);
  EXPECT_EQ(counter(service, "svc.errors"), 1.0);
}

TEST(Service, UncacheableSpecsStillAnswerWithoutPopulatingShards) {
  Service service;
  pipeline::ScenarioSpec spec = calibration_spec();
  // An explicit placement list with a sparse sweep is still cacheable;
  // uncacheable means platform_override without a variant, which is not
  // wire-representable. Closest wire case: two runs of the same spec but
  // different placements share one calibration.
  spec.placements = pipeline::PlacementSet::kExplicit;
  spec.explicit_placements = {{topo::NumaId(0), topo::NumaId(0)}};
  const Reply a = service.handle_request(predict_request(spec, "a"));
  spec.explicit_placements = {{topo::NumaId(0), topo::NumaId(1)}};
  const Reply b = service.handle_request(predict_request(spec, "b"));
  ASSERT_TRUE(a.ok && b.ok);
  EXPECT_EQ(counter(service, "svc.calibrations"), 1.0)
      << "placement selection is not part of the fingerprint";
}

TEST(ServeStdio, RepliesFrameForFrameAndStopsAtEof) {
  Service service;
  std::stringstream in;
  write_frame(in, render_request(simple_request("h1", Method::kHealth)));
  write_frame(in, render_request(simple_request("h2", Method::kHealth)));
  std::stringstream out;
  EXPECT_EQ(serve_stdio(service, in, out), 2u);

  std::string payload;
  std::string error;
  ASSERT_TRUE(read_frame(out, &payload, &error));
  EXPECT_EQ(parse_reply(payload)->id, "h1");
  ASSERT_TRUE(read_frame(out, &payload, &error));
  EXPECT_EQ(parse_reply(payload)->id, "h2");
  EXPECT_FALSE(read_frame(out, &payload, &error));
}

TEST(ServeStdio, MalformedFrameEmitsOneErrorReplyAndStops) {
  Service service;
  std::stringstream in("not-a-length\n");
  std::stringstream out;
  EXPECT_EQ(serve_stdio(service, in, out), 0u);
  std::string payload;
  std::string error;
  ASSERT_TRUE(read_frame(out, &payload, &error)) << error;
  const auto reply = parse_reply(payload);
  ASSERT_TRUE(reply);
  EXPECT_EQ(reply->error.code, ErrorCode::kBadRequest);
}

TEST(SocketServer, ServesClientsAndStopsCleanly) {
  Service service;
  SocketServerOptions options;
  options.path = "/tmp/mcm-svc-test-" + std::to_string(::getpid()) +
                 ".sock";
  SocketServer server(service, options);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  EXPECT_TRUE(server.running());

  {
    auto client = Client::connect(options.path, &error);
    ASSERT_TRUE(client) << error;
    const auto health = client->health(&error);
    ASSERT_TRUE(health) << error;
    EXPECT_TRUE(health->ok);

    // Two sequential clients on one connection-per-call transport.
    const auto reply =
        client->predict(calibration_spec(), TrafficClass::kInteractive,
                        &error);
    ASSERT_TRUE(reply) << error;
    EXPECT_TRUE(reply->ok) << reply->error.message;
  }

  server.stop();
  EXPECT_FALSE(server.running());
  EXPECT_FALSE(Client::connect(options.path, &error))
      << "socket must be unlinked after stop()";
}

// -------------------------------------------------------------- deadlines

TEST(Service, ExpiredDeadlineIsRefusedBeforeThePipelineRuns) {
  ServiceOptions options;
  // Each clock read advances 10s: the deadline computed at arrival is
  // already in the past by the dispatch pre-check — as if the request
  // sat in a queue past its budget.
  options.clock = [t = std::make_shared<double>(0.0)] {
    *t += 10.0;
    return *t;
  };
  Service service(options);
  Request request = predict_request(calibration_spec(), "d1");
  request.deadline_ms = 1000.0;
  const Reply reply = service.handle_request(request);
  ASSERT_FALSE(reply.ok);
  EXPECT_EQ(reply.error.code, ErrorCode::kDeadlineExceeded);
  EXPECT_EQ(counter(service, "svc.deadline_exceeded"), 1.0);
  EXPECT_EQ(counter(service, "pipeline.runs"), 0.0)
      << "an expired request must not burn a worker";
}

TEST(Service, GenerousDeadlineRunsNormally) {
  Service service;
  Request request = predict_request(calibration_spec(), "d2");
  request.deadline_ms = 60000.0;
  const Reply reply = service.handle_request(request);
  EXPECT_TRUE(reply.ok) << reply.error.message;
  EXPECT_EQ(counter(service, "svc.deadline_exceeded"), 0.0);
}

TEST(Service, FollowerDeadlineExpiresWhileWaitingOnALeader) {
  Service service;
  std::thread leader([&] {
    // Runs the real calibration; long enough for the follower to join.
    (void)service.handle_request(
        predict_request(calibration_spec(), "lead"));
  });
  // Wait until the leader holds the flight (its shard records the miss).
  const std::size_t shard =
      service.cache().shard_index(calibration_spec().fingerprint());
  const std::string misses =
      "svc.cache.shard" + std::to_string(shard) + ".misses";
  while (counter(service, misses) < 1.0) {
    std::this_thread::yield();
  }
  Request follower = predict_request(calibration_spec(), "follow");
  follower.deadline_ms = 0.001;  // expires during the wait, not before
  const Reply reply = service.handle_request(follower);
  leader.join();
  // Either the flight finished within a microsecond (reply.ok) or — the
  // overwhelmingly common case — the follower's wait timed out with the
  // typed error instead of blocking unboundedly.
  if (!reply.ok) {
    EXPECT_EQ(reply.error.code, ErrorCode::kDeadlineExceeded);
    EXPECT_GE(counter(service, "svc.deadline_exceeded"), 1.0);
  }
}

// ------------------------------------------------------------------ drain

TEST(Service, DrainingHealthAndCountersReportTheState) {
  Service service;
  service.set_draining(true);
  const Reply reply =
      service.handle_request(simple_request("h1", Method::kHealth));
  ASSERT_TRUE(reply.ok);
  EXPECT_EQ(reply.result.string_at("status"), "draining");
  service.set_draining(false);
  EXPECT_EQ(service.handle_request(simple_request("h2", Method::kHealth))
                .result.string_at("status"),
            "ok");
}

TEST(SocketServer, DrainFinishesInFlightWorkAndRefusesNewConnections) {
  Service service;
  SocketServerOptions options;
  options.path = "/tmp/mcm-svc-drain-" + std::to_string(::getpid()) +
                 ".sock";
  SocketServer server(service, options);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  auto client = Client::connect(options.path, &error);
  ASSERT_TRUE(client) << error;
  const auto before = client->health(&error);
  ASSERT_TRUE(before) << error;

  EXPECT_TRUE(server.drain(2000)) << "idle server must drain instantly";
  EXPECT_FALSE(server.running());
  EXPECT_FALSE(Client::connect(options.path))
      << "a drained server must not accept";
}

TEST(SocketServer, DrainingConnectionsCloseAfterTheirCurrentReply) {
  Service service;
  SocketServerOptions options;
  options.path = "/tmp/mcm-svc-drainc-" + std::to_string(::getpid()) +
                 ".sock";
  SocketServer server(service, options);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  auto client = Client::connect(options.path, &error);
  ASSERT_TRUE(client) << error;
  service.set_draining(true);
  const auto reply = client->health(&error);
  ASSERT_TRUE(reply) << error;
  EXPECT_EQ(reply->result.string_at("status"), "draining");
  // The server hangs up after that reply instead of keeping the
  // connection alive: the next single-attempt call on the same
  // connection fails (EPIPE on send or EOF on read) rather than block.
  std::string call_error;
  const auto second = client->health(&call_error);
  EXPECT_FALSE(second)
      << "connection must be closed after the draining reply";
  EXPECT_EQ(counter(service, "svc.drained"), 1.0);
  server.stop();
}

// --------------------------------------------------- cache persistence

TEST(Service, CachePersistsAcrossServiceInstances) {
  const std::string path =
      testing::TempDir() + "mcm-svc-cache-" + std::to_string(::getpid()) +
      ".json";
  std::string error;
  {
    Service service;
    ASSERT_TRUE(
        service.handle_request(predict_request(calibration_spec(), "p1"))
            .ok);
    ASSERT_TRUE(service.save_cache_file(path, &error)) << error;
  }
  Service revived;
  EXPECT_EQ(revived.load_cache_file(path, &error),
            pipeline::CacheFileStatus::kOk)
      << error;
  EXPECT_EQ(revived.cache().size(), 1u);
  const Reply warm = revived.handle_request(
      predict_request(calibration_spec(), "p2"));
  ASSERT_TRUE(warm.ok) << warm.error.message;
  EXPECT_EQ(warm.result.find("cache_hit")->as_bool(), true)
      << "a revived service must serve from the persisted cache";
  EXPECT_EQ(counter(revived, "svc.calibrations"), 0.0);
  EXPECT_EQ(counter(revived, "cache.load_rejected"), 0.0);
  std::remove(path.c_str());
}

TEST(Service, CorruptCacheFileIsRejectedAndCounted) {
  const std::string path =
      testing::TempDir() + "mcm-svc-corrupt-" +
      std::to_string(::getpid()) + ".json";
  std::string error;
  {
    Service service;
    ASSERT_TRUE(
        service.handle_request(predict_request(calibration_spec(), "p1"))
            .ok);
    ASSERT_TRUE(service.save_cache_file(path, &error)) << error;
  }
  // Flip one payload byte: the checksum must catch it.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  bytes[bytes.size() / 2] ^= 0x01;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
  out.close();

  Service revived;
  EXPECT_EQ(revived.load_cache_file(path, &error),
            pipeline::CacheFileStatus::kChecksumMismatch)
      << error;
  EXPECT_EQ(revived.cache().size(), 0u) << "a rejected file loads nothing";
  EXPECT_EQ(counter(revived, "cache.load_rejected"), 1.0);
  EXPECT_EQ(revived.load_cache_file("/nonexistent-zzz/cache.json"),
            pipeline::CacheFileStatus::kMissing);
  EXPECT_EQ(counter(revived, "cache.load_rejected"), 1.0)
      << "a missing file is a cold start, not a rejection";
  std::remove(path.c_str());
}

// ------------------------------------------------- stdio malformed corpus

TEST(ServeStdio, MalformedFrameCorpusAnswersTypedErrorsAndSurvives) {
  Service service;
  std::stringstream in;
  write_frame(in, "");                // zero-length frame: valid framing
  write_frame(in, "{not json");       // unparseable payload
  write_frame(in, R"({"v": 1, "id": "u", "method": "frobnicate"})");
  write_frame(in, render_request(simple_request("h1", Method::kHealth)));
  in << "not-a-length\n";             // framing error: no resync point
  std::stringstream out;
  // The three parseable-frame errors and the health request are served;
  // the framing error stops the loop after one last bad-request reply.
  EXPECT_EQ(serve_stdio(service, in, out), 4u);

  const ErrorCode expected[] = {
      ErrorCode::kBadRequest, ErrorCode::kBadRequest,
      ErrorCode::kUnknownMethod};
  std::string payload;
  std::string error;
  for (const ErrorCode code : expected) {
    ASSERT_TRUE(read_frame(out, &payload, &error)) << error;
    const auto reply = parse_reply(payload);
    ASSERT_TRUE(reply);
    EXPECT_FALSE(reply->ok);
    EXPECT_EQ(reply->error.code, code);
  }
  ASSERT_TRUE(read_frame(out, &payload, &error)) << error;
  EXPECT_TRUE(parse_reply(payload)->ok) << "the valid frame still works";
  ASSERT_TRUE(read_frame(out, &payload, &error)) << error;
  EXPECT_EQ(parse_reply(payload)->error.code, ErrorCode::kBadRequest);
  EXPECT_FALSE(read_frame(out, &payload, &error));
}

// ------------------------------------------------------------------ batch

TEST(Batch, RepliesAreByteIdenticalToSerialAndCalibrateOnce) {
  // N compatible predicts issued serially against one service...
  Service serial_service;
  std::vector<std::string> expected;
  for (int i = 1; i <= 3; ++i) {
    const Reply reply = serial_service.handle_request(
        predict_request(calibration_spec(), "q" + std::to_string(i)));
    ASSERT_TRUE(reply.ok) << reply.error.message;
    expected.push_back(render_reply(reply));
  }

  // ...must be byte-identical, entry for entry, to one batch envelope
  // against a fresh service — with the calibration run exactly once.
  Service service;
  std::vector<Request> entries;
  for (int i = 1; i <= 3; ++i) {
    entries.push_back(
        predict_request(calibration_spec(), "q" + std::to_string(i)));
  }
  const Reply batch = service.handle_request(
      Client::make_batch("b", std::move(entries)));
  ASSERT_TRUE(batch.ok) << batch.error.message;
  EXPECT_EQ(batch.id, "b");
  const json::Value* replies = batch.result.find("replies");
  ASSERT_NE(replies, nullptr);
  const json::Value::Array& array = replies->as_array();
  ASSERT_EQ(array.size(), 3u);
  for (std::size_t i = 0; i < array.size(); ++i) {
    EXPECT_EQ(json::serialize(array[i]), expected[i]) << "entry " << i;
  }
  EXPECT_EQ(counter(service, "svc.calibrations"), 1.0)
      << "the whole group must ride one calibration";
  EXPECT_EQ(counter(service, "svc.batch.requests"), 1.0);
  EXPECT_EQ(counter(service, "svc.batch.entries"), 3.0);
  EXPECT_EQ(counter(service, "svc.batch.groups"), 1.0);
  EXPECT_EQ(counter(service, "svc.batch.entry_errors"), 0.0);
}

TEST(Batch, GroupingPreservesPerEntryCacheHitFlagsAcrossSpecs) {
  // Interleaved specs A, B, A: grouping must not change what each entry
  // observes compared to serial order — A#2 is a cache hit, B is not.
  const pipeline::ScenarioSpec spec_a = calibration_spec("henri");
  const pipeline::ScenarioSpec spec_b = calibration_spec("occigen");

  Service serial_service;
  std::vector<std::string> expected;
  const std::vector<const pipeline::ScenarioSpec*> order = {&spec_a,
                                                            &spec_b,
                                                            &spec_a};
  for (std::size_t i = 0; i < order.size(); ++i) {
    const Reply reply = serial_service.handle_request(predict_request(
        *order[i], "m" + std::to_string(i + 1)));
    ASSERT_TRUE(reply.ok) << reply.error.message;
    expected.push_back(render_reply(reply));
  }

  Service service;
  std::vector<Request> entries;
  for (std::size_t i = 0; i < order.size(); ++i) {
    entries.push_back(
        predict_request(*order[i], "m" + std::to_string(i + 1)));
  }
  const Reply batch = service.handle_request(
      Client::make_batch("b", std::move(entries)));
  ASSERT_TRUE(batch.ok) << batch.error.message;
  const std::optional<std::vector<Reply>> decoded =
      Client::batch_replies(batch);
  ASSERT_TRUE(decoded);
  ASSERT_EQ(decoded->size(), 3u);
  EXPECT_EQ((*decoded)[0].result.find("cache_hit")->as_bool(), false);
  EXPECT_EQ((*decoded)[1].result.find("cache_hit")->as_bool(), false);
  EXPECT_EQ((*decoded)[2].result.find("cache_hit")->as_bool(), true);
  const json::Value::Array& array =
      batch.result.find("replies")->as_array();
  for (std::size_t i = 0; i < array.size(); ++i) {
    EXPECT_EQ(json::serialize(array[i]), expected[i]) << "entry " << i;
  }
  EXPECT_EQ(counter(service, "svc.batch.groups"), 2.0);
  EXPECT_EQ(counter(service, "svc.calibrations"), 2.0);
}

TEST(Batch, InvalidEntryGetsItsOwnTypedReplyWithoutPoisoningTheBatch) {
  Service service;
  const std::string payload =
      R"({"v": 1, "id": "b", "method": "batch", "entries": [
          {"v": 1, "id": "ok1", "method": "calibrate",
           "spec": {"platform": "henri"}},
          {"v": 1, "id": "bad", "method": "predict",
           "spec": {"platform": "henri", "bogus": 1}}]})";
  const auto reply = parse_reply(service.handle(payload));
  ASSERT_TRUE(reply);
  ASSERT_TRUE(reply->ok) << reply->error.message
                         << " (a bad entry must not fail the envelope)";
  const std::optional<std::vector<Reply>> decoded =
      Client::batch_replies(*reply);
  ASSERT_TRUE(decoded);
  ASSERT_EQ(decoded->size(), 2u);
  EXPECT_TRUE((*decoded)[0].ok) << (*decoded)[0].error.message;
  EXPECT_EQ((*decoded)[0].id, "ok1");
  EXPECT_FALSE((*decoded)[1].ok);
  EXPECT_EQ((*decoded)[1].id, "bad");
  EXPECT_EQ((*decoded)[1].error.code, ErrorCode::kInvalidSpec);
  EXPECT_EQ(counter(service, "svc.batch.entry_errors"), 1.0);
  EXPECT_EQ(counter(service, "svc.batch.entries"), 2.0);
  EXPECT_EQ(counter(service, "svc.calibrations"), 1.0)
      << "the valid sibling was served normally";
}

TEST(Batch, EntryDeadlinesAreEnforcedPerEntry) {
  // A ticking clock: every read advances one second, so an entry with a
  // 1 ms budget is long expired by the time its group is scheduled,
  // while its unbounded sibling still runs.
  ServiceOptions options;
  auto ticks = std::make_shared<std::atomic<int>>(0);
  options.clock = [ticks] {
    return static_cast<double>(ticks->fetch_add(1));
  };
  Service service(options);

  std::vector<Request> entries;
  entries.push_back(predict_request(calibration_spec(), "free"));
  Request bounded = predict_request(calibration_spec(), "tight");
  bounded.deadline_ms = 1.0;
  entries.push_back(std::move(bounded));
  const Reply batch = service.handle_request(
      Client::make_batch("b", std::move(entries)));
  ASSERT_TRUE(batch.ok) << batch.error.message;
  const std::optional<std::vector<Reply>> decoded =
      Client::batch_replies(batch);
  ASSERT_TRUE(decoded);
  ASSERT_EQ(decoded->size(), 2u);
  EXPECT_TRUE((*decoded)[0].ok) << (*decoded)[0].error.message;
  EXPECT_FALSE((*decoded)[1].ok);
  EXPECT_EQ((*decoded)[1].error.code, ErrorCode::kDeadlineExceeded);
  EXPECT_EQ(counter(service, "svc.deadline_exceeded"), 1.0);
  EXPECT_EQ(counter(service, "svc.batch.entry_errors"), 1.0);
}

TEST(Batch, ShedEntriesDoNotPoisonTheirSiblings) {
  // One interactive token, never refilled: the first entry is admitted,
  // the second is shed with its own typed reply.
  ServiceOptions options;
  options.admission.interactive = {1.0, 0.0};
  options.clock = [] { return 0.0; };
  Service service(options);

  std::vector<Request> entries;
  entries.push_back(predict_request(calibration_spec("henri"), "in"));
  entries.push_back(predict_request(calibration_spec("occigen"), "out"));
  const Reply batch = service.handle_request(
      Client::make_batch("b", std::move(entries)));
  ASSERT_TRUE(batch.ok) << batch.error.message;
  const std::optional<std::vector<Reply>> decoded =
      Client::batch_replies(batch);
  ASSERT_TRUE(decoded);
  EXPECT_TRUE((*decoded)[0].ok) << (*decoded)[0].error.message;
  EXPECT_FALSE((*decoded)[1].ok);
  EXPECT_EQ((*decoded)[1].error.code, ErrorCode::kOverloaded);
  EXPECT_EQ(counter(service, "svc.shed"), 1.0);
}

// ----------------------------------------------- single-flight failures

TEST(SingleFlight, LeaderFailurePropagatesToEveryParkedFollower) {
  // Regression: a failing leader used to finish its flight silently, so
  // followers re-checked the shard, elected a new leader, and re-ran a
  // calibration that had just proved doomed — or worse, kept waiting.
  // Now the failure wakes all followers with the same typed reply.
  constexpr int kFollowers = 3;
  std::promise<void> leader_parked;
  std::promise<void> release_leader;
  std::shared_future<void> released = release_leader.get_future().share();
  std::atomic<bool> parked{false};
  ServiceOptions options;
  options.on_leader_start = [&leader_parked, released, &parked] {
    // Only the first leader parks; propagation means no re-election, so
    // nobody else should ever get here (asserted below via the hook
    // firing once).
    if (!parked.exchange(true)) {
      leader_parked.set_value();
      released.wait();
    }
  };
  Service service(options);

  // An unresolvable platform: the leader's pipeline throws only once it
  // actually runs, i.e. after followers had time to park on its flight.
  const pipeline::ScenarioSpec doomed = calibration_spec("no-such-platform");
  Reply leader_reply;
  std::thread leader([&] {
    leader_reply = service.handle_request(predict_request(doomed, "L"));
  });
  leader_parked.get_future().wait();

  std::vector<Reply> follower_replies(kFollowers);
  std::vector<std::thread> followers;
  followers.reserve(kFollowers);
  for (int i = 0; i < kFollowers; ++i) {
    followers.emplace_back([&service, &doomed, &follower_replies, i] {
      follower_replies[static_cast<std::size_t>(i)] =
          service.handle_request(
              predict_request(doomed, "F" + std::to_string(i)));
    });
  }
  // Rendezvous: each follower counts one single-flight hit (under the
  // flights lock) before it starts waiting on the parked leader.
  while (counter(service, "svc.singleflight_hits") < kFollowers) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  release_leader.set_value();
  leader.join();
  for (std::thread& follower : followers) follower.join();

  EXPECT_FALSE(leader_reply.ok);
  EXPECT_EQ(leader_reply.error.code, ErrorCode::kInternal);
  for (const Reply& reply : follower_replies) {
    EXPECT_FALSE(reply.ok);
    EXPECT_EQ(reply.error.code, ErrorCode::kInternal);
    EXPECT_NE(reply.error.message.find("calibration leader failed"),
              std::string::npos)
        << reply.error.message;
  }
  EXPECT_EQ(counter(service, "svc.calibrations"), 0.0)
      << "nobody re-ran the doomed calibration";
  EXPECT_EQ(counter(service, "svc.errors"),
            static_cast<double>(kFollowers + 1));
}

// ------------------------------------------------- admission vs parsing

TEST(Admission, MalformedFloodsDoNotBurnTokensFromValidTraffic) {
  // Regression: tokens must be charged only after a request validated.
  // With capacity 2 and no refill, 128 malformed/invalid requests must
  // leave exactly two tokens for well-formed traffic.
  ServiceOptions options;
  options.admission.interactive = {2.0, 0.0};
  options.clock = [] { return 0.0; };
  Service service(options);

  for (int i = 0; i < 64; ++i) {
    const std::string reply = service.handle("definitely not json");
    EXPECT_NE(reply.find("bad-request"), std::string::npos) << reply;
  }
  for (int i = 0; i < 64; ++i) {
    const std::string reply = service.handle(
        R"({"v": 1, "id": "x", "method": "predict",
            "spec": {"platform": "henri", "bogus": 1}})");
    EXPECT_NE(reply.find("invalid-spec"), std::string::npos) << reply;
  }
  const Reply first = service.handle_request(
      predict_request(calibration_spec(), "v1"));
  EXPECT_TRUE(first.ok)
      << "the flood must not have charged interactive tokens: "
      << first.error.message;
  const Reply second = service.handle_request(
      predict_request(calibration_spec(), "v2"));
  EXPECT_TRUE(second.ok) << second.error.message;
  const Reply third = service.handle_request(
      predict_request(calibration_spec(), "v3"));
  ASSERT_FALSE(third.ok) << "capacity 2: the two valid requests were "
                            "the only charges";
  EXPECT_EQ(third.error.code, ErrorCode::kOverloaded);
  EXPECT_EQ(counter(service, "svc.shed"), 1.0);
}

TEST(SocketServer, StartFailsGracefullyOnBadPath) {
  Service service;
  SocketServerOptions options;
  options.path = "/nonexistent-dir-zzz/sock";
  SocketServer server(service, options);
  std::string error;
  EXPECT_FALSE(server.start(&error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(server.running());
  server.stop();  // idempotent on a never-started server
}

}  // namespace
}  // namespace mcm::svc
