// Trace propagation under chaos: retries keep the call's trace_id while
// every attempt gets a fresh span_id, and a single-flight follower's
// queue_wait span links to the leader that calibrated on its behalf.
#include <gtest/gtest.h>

#include <unistd.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/trace.hpp"
#include "obs/trace_context.hpp"
#include "pipeline/spec.hpp"
#include "svc/client.hpp"
#include "svc/server.hpp"

namespace mcm::svc {
namespace {

double counter(const Service& service, const std::string& name) {
  const obs::MetricsSnapshot snapshot = service.metrics().snapshot();
  for (const auto& [key, value] : snapshot.counters) {
    if (key == name) return static_cast<double>(value);
  }
  return 0.0;
}

std::string unique_path(const std::string& tag) {
  return "/tmp/mcm-chaost-" + tag + "-" + std::to_string(::getpid()) +
         ".sock";
}

pipeline::ScenarioSpec calibration_spec() {
  pipeline::ScenarioSpec spec;
  spec.name = "chaos-trace";
  spec.platform = "henri";
  spec.placements = pipeline::PlacementSet::kCalibration;
  return spec;
}

/// `"key":value` with the id printed exactly (the sink renders integral
/// args as integers, so a 48-bit id is searchable verbatim).
std::string tag(const char* key, std::uint64_t id) {
  return std::string("\"") + key + "\":" + std::to_string(id);
}

TEST(ChaosTrace, RetriesReuseTheTraceIdWithFreshSpanIds) {
  obs::ChromeTraceSink server_sink;
  ServiceOptions options;
  options.admission.bulk = {1.0, 0.0};  // one token, never refilled
  options.clock = [] { return 0.0; };
  options.trace = &server_sink;
  Service service(options);
  const std::string path = unique_path("retry");
  SocketServer server(service, SocketServerOptions{path});
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  auto client = Client::connect(path, &error);
  ASSERT_TRUE(client) << error;

  obs::ChromeTraceSink client_sink;
  constexpr std::uint64_t kSeed = 9;
  client->enable_tracing(kSeed, &client_sink);
  // The id stream is deterministic: mirror it to know exactly which ids
  // each call and attempt must have used.
  obs::TraceIdGenerator expected(kSeed);
  const std::uint64_t trace_a = expected.next();  // call 1
  const std::uint64_t span_a1 = expected.next();  //   its only attempt
  const std::uint64_t trace_b = expected.next();  // call 2
  const std::uint64_t span_b1 = expected.next();  //   attempt 1
  const std::uint64_t span_b2 = expected.next();  //   attempt 2 (retry)
  const std::uint64_t span_b3 = expected.next();  //   attempt 3 (retry)

  // Call 1 consumes the only bulk token.
  const auto first =
      client->predict(calibration_spec(), TrafficClass::kBulk, &error);
  ASSERT_TRUE(first) << error;
  ASSERT_TRUE(first->ok) << first->error.message;

  // Call 2 is shed on all three attempts.
  Request request;
  request.method = Method::kPredict;
  request.traffic_class = TrafficClass::kBulk;
  request.spec = calibration_spec();
  CallOptions call;
  call.retry.max_retries = 2;
  call.retry_pause_ms = 1.0;
  const auto shed = client->call(std::move(request), call, &error);
  ASSERT_TRUE(shed) << error;
  ASSERT_FALSE(shed->ok);
  EXPECT_EQ(counter(service, "svc.shed"), 3.0);
  server.stop();

  // The shed reply echoes the *call's* trace id.
  EXPECT_EQ(shed->error.trace_id, obs::trace_id_to_hex(trace_b));

  // The client recorded one attempt span per wire attempt.
  EXPECT_EQ(client_sink.count("attempt"), 4u);
  const std::string client_json = client_sink.to_json();
  EXPECT_NE(client_json.find(tag("trace_id", trace_a)), std::string::npos);
  for (const std::uint64_t span : {span_b1, span_b2, span_b3}) {
    EXPECT_NE(client_json.find(tag("span_id", span)), std::string::npos)
        << "every retry needs its own span id";
  }

  // Server-side request spans carry the same (trace, span) pairs: one
  // trace id across the retries, three distinct span ids.
  EXPECT_EQ(server_sink.count("request"), 4u);
  const std::string server_json = server_sink.to_json();
  EXPECT_NE(server_json.find(tag("trace_id", trace_a)), std::string::npos);
  EXPECT_NE(server_json.find(tag("span_id", span_a1)), std::string::npos);
  EXPECT_NE(server_json.find(tag("trace_id", trace_b)), std::string::npos);
  for (const std::uint64_t span : {span_b1, span_b2, span_b3}) {
    EXPECT_NE(server_json.find(tag("span_id", span)), std::string::npos)
        << "attempt span ids must propagate to the server's spans";
  }
}

TEST(ChaosTrace, FollowerQueueWaitSpansLinkToTheirLeader) {
  obs::ChromeTraceSink sink;
  ServiceOptions options;
  options.trace = &sink;
  Service service(options);
  constexpr std::uint64_t kLeaderTrace = 0x111111;
  constexpr std::uint64_t kFollowerTrace = 0x222222;

  const auto traced_predict = [](const std::string& id,
                                 std::uint64_t trace_id) {
    Request request;
    request.id = id;
    request.method = Method::kPredict;
    request.spec = calibration_spec();
    request.trace.trace_id = trace_id;
    request.trace.span_id = trace_id + 1;
    return request;
  };

  std::thread leader([&] {
    ASSERT_TRUE(
        service.handle_request(traced_predict("lead", kLeaderTrace)).ok);
  });
  // Wait until the leader owns the flight (its shard records the miss),
  // then pile followers onto it.
  const std::size_t shard =
      service.cache().shard_index(calibration_spec().fingerprint());
  const std::string misses =
      "svc.cache.shard" + std::to_string(shard) + ".misses";
  while (counter(service, misses) < 1.0) {
    std::this_thread::yield();
  }
  std::vector<std::thread> followers;
  for (int i = 0; i < 4; ++i) {
    followers.emplace_back([&, i] {
      ASSERT_TRUE(service
                      .handle_request(traced_predict(
                          "follow" + std::to_string(i), kFollowerTrace))
                      .ok);
    });
  }
  for (std::thread& t : followers) t.join();
  leader.join();

  if (counter(service, "svc.singleflight_hits") < 1.0) {
    GTEST_SKIP() << "calibration finished before any follower joined "
                    "the flight — nothing to link";
  }
  // At least one follower waited on the leader's flight: its queue_wait
  // span must carry both its own identity and the leader's link.
  const std::string json = sink.to_json();
  EXPECT_NE(json.find(tag("link.trace_id", kLeaderTrace)),
            std::string::npos)
      << json;
  EXPECT_NE(json.find(tag("link.span_id", kLeaderTrace + 1)),
            std::string::npos);
  EXPECT_NE(json.find(tag("trace_id", kFollowerTrace)), std::string::npos);
}

}  // namespace
}  // namespace mcm::svc
