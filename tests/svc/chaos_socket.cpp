// Deterministic socket chaos harness (docs/service.md, "Chaos testing"):
// a seeded schedule of hostile client behaviours — truncated frames,
// garbage payloads, zero-length frames, mid-frame stalls, resets,
// oversized frames — replayed against a live SocketServer. The contract:
// every surviving request gets byte-identical replies across runs, every
// fault gets a typed error or a clean close, and nothing ever hangs.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <vector>

#include "svc/client.hpp"
#include "svc/server.hpp"
#include "util/rng.hpp"

namespace mcm::svc {
namespace {

double counter(const Service& service, const std::string& name) {
  const obs::MetricsSnapshot snapshot = service.metrics().snapshot();
  for (const auto& [key, value] : snapshot.counters) {
    if (key == name) return static_cast<double>(value);
  }
  return 0.0;
}

std::string unique_path(const std::string& tag) {
  return "/tmp/mcm-chaos-" + tag + "-" + std::to_string(::getpid()) +
         ".sock";
}

/// A raw AF_UNIX connection that can speak broken protocol on purpose.
class RawConn {
 public:
  explicit RawConn(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }

  [[nodiscard]] bool ok() const { return fd_ >= 0; }
  void send(const std::string& bytes) {
    ASSERT_EQ(::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(bytes.size()));
  }
  void half_close() { ::shutdown(fd_, SHUT_WR); }

  /// One reply frame, or the read status spelled out. Bounded: the
  /// harness must never hang on a server bug.
  [[nodiscard]] std::string read_reply() {
    FrameIoOptions io;
    io.idle_timeout_ms = 5000;
    io.frame_timeout_ms = 5000;
    std::string payload;
    std::string error;
    const FrameReadStatus status =
        read_frame_fd(fd_, &payload, &error, io);
    if (status == FrameReadStatus::kFrame) return payload;
    return std::string("<") + to_string(status) + ">";
  }

 private:
  int fd_ = -1;
};

std::string frame(const std::string& payload) {
  return std::to_string(payload.size()) + "\n" + payload + "\n";
}

std::string health_frame(const std::string& id) {
  Request request;
  request.id = id;
  request.method = Method::kHealth;
  return frame(render_request(request));
}

/// One seeded pass of the chaos schedule; returns the full outcome
/// transcript. Two passes against fresh servers must produce identical
/// transcripts — that is the determinism contract scripts/ci.sh replays.
std::string run_schedule(std::uint64_t seed, const std::string& path_tag) {
  Service service;
  SocketServerOptions options;
  options.path = unique_path(path_tag);
  options.frame_timeout_ms = 200;  // stalls resolve quickly
  SocketServer server(service, options);
  std::string error;
  EXPECT_TRUE(server.start(&error)) << error;

  Rng rng(seed);
  std::string transcript;
  for (int op = 0; op < 24; ++op) {
    const std::uint64_t kind = rng.uniform_below(7);
    const std::string id = "op" + std::to_string(op);
    RawConn conn(options.path);
    EXPECT_TRUE(conn.ok());
    transcript += "#" + std::to_string(op) + " kind=" +
                  std::to_string(kind) + "\n";
    switch (kind) {
      case 0:  // well-formed health request
        conn.send(health_frame(id));
        transcript += conn.read_reply() + "\n";
        break;
      case 1:  // zero-length frame: valid framing, empty payload
        conn.send("0\n\n");
        transcript += conn.read_reply() + "\n";
        break;
      case 2:  // garbage payload
        conn.send("8\nnot json\n");
        transcript += conn.read_reply() + "\n";
        break;
      case 3:  // unknown method, then proof the connection survived
        conn.send(frame("{\"v\": 1, \"id\": \"" + id +
                        "\", \"method\": \"frobnicate\"}"));
        transcript += conn.read_reply() + "\n";
        conn.send(health_frame(id + "b"));
        transcript += conn.read_reply() + "\n";
        break;
      case 4:  // truncated frame, then half-close
        conn.send("40\nhalf");
        conn.half_close();
        transcript += conn.read_reply() + "\n";
        break;
      case 5:  // unparseable length header
        conn.send("not-a-length\n");
        transcript += conn.read_reply() + "\n";
        break;
      case 6:  // immediate reset: connect and vanish
        transcript += "reset\n";
        break;
    }
  }
  server.stop();
  // Whatever the schedule did, the server kept counting and never
  // wedged; requests == well-formed frames that reached the service.
  EXPECT_GE(counter(service, "svc.requests"), 1.0);
  return transcript;
}

TEST(ChaosSocket, SeededScheduleIsByteIdenticalAcrossRuns) {
  const std::string first = run_schedule(42, "sched-a");
  const std::string second = run_schedule(42, "sched-b");
  EXPECT_EQ(first, second)
      << "chaos schedule must be deterministic for CI byte-diffing";
  // The schedule actually exercised faults, not just health checks.
  EXPECT_NE(first.find("kind=4"), std::string::npos);
  EXPECT_NE(first.find("error"), std::string::npos);
}

TEST(ChaosSocket, MidFrameStallCannotPinTheOnlyWorker) {
  Service service;
  SocketServerOptions options;
  options.path = unique_path("stall");
  options.workers = 1;  // the stalled client would block everything
  options.frame_timeout_ms = 200;
  SocketServer server(service, options);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  // Client A starts a frame and stalls forever.
  RawConn stalled(options.path);
  ASSERT_TRUE(stalled.ok());
  stalled.send("64\npartial");

  // Client B is a well-behaved interactive request with a deadline. It
  // must get through once the slow-client guard cuts A loose.
  auto client = Client::connect(options.path, &error);
  ASSERT_TRUE(client) << error;
  Request request;
  request.method = Method::kHealth;
  CallOptions call;
  call.deadline_ms = 5000.0;
  const auto reply = client->call(std::move(request), call, &error);
  ASSERT_TRUE(reply) << error;
  EXPECT_TRUE(reply->ok) << reply->error.message;

  EXPECT_GE(counter(service, "svc.slow_client_drops"), 1.0);
  // A's connection was cut without a reply.
  EXPECT_EQ(stalled.read_reply(), "<eof>");
  server.stop();
}

TEST(ChaosSocket, OversizedFrameGetsATypedRefusal) {
  Service service;
  SocketServerOptions options;
  options.path = unique_path("oversize");
  options.max_frame_bytes = 1024;
  SocketServer server(service, options);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  RawConn conn(options.path);
  ASSERT_TRUE(conn.ok());
  conn.send("2048\n");
  const std::string reply_payload = conn.read_reply();
  const auto reply = parse_reply(reply_payload);
  ASSERT_TRUE(reply) << reply_payload;
  EXPECT_FALSE(reply->ok);
  EXPECT_EQ(reply->error.code, ErrorCode::kBadRequest);
  EXPECT_NE(reply->error.message.find("1024-byte limit"),
            std::string::npos)
      << reply->error.message;
  // The refusal closes the connection: there is no resync point.
  EXPECT_EQ(conn.read_reply(), "<eof>");
  server.stop();
}

TEST(ChaosSocket, ConnectionResetsLeaveTheServerServing) {
  Service service;
  SocketServerOptions options;
  options.path = unique_path("reset");
  SocketServer server(service, options);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  for (int i = 0; i < 8; ++i) {
    RawConn conn(options.path);
    ASSERT_TRUE(conn.ok());
    if (i % 2 == 0) conn.send("12");  // partial header, then vanish
  }
  auto client = Client::connect(options.path, &error);
  ASSERT_TRUE(client) << error;
  const auto health = client->health(&error);
  ASSERT_TRUE(health) << error;
  EXPECT_TRUE(health->ok);
  server.stop();
}

}  // namespace
}  // namespace mcm::svc
