// End-to-end integration tests: measure -> calibrate -> predict -> score,
// asserting the error magnitudes and qualitative lessons of the paper's
// evaluation (Table II and §IV-C).
#include <gtest/gtest.h>

#include "benchlib/backend.hpp"
#include "benchlib/runner.hpp"
#include "model/model.hpp"
#include "topo/platforms.hpp"

namespace mcm {
namespace {

model::ErrorReport full_report(const std::string& platform) {
  bench::SimBackend backend(topo::make_platform(platform));
  const auto model = model::ContentionModel::from_backend(backend);
  const bench::SweepResult sweep = bench::run_all_placements(backend);
  return model.evaluate_against(sweep);
}

struct ErrorBound {
  const char* platform;
  double comm_all_max;  // % MAPE ceilings, scaled from the paper's Table II
  double comp_all_max;
  double average_max;
};

class TableTwo : public testing::TestWithParam<ErrorBound> {};

TEST_P(TableTwo, ErrorsStayWithinPaperLikeBounds) {
  const ErrorBound bound = GetParam();
  const model::ErrorReport report = full_report(bound.platform);
  EXPECT_LT(report.comm_all, bound.comm_all_max) << bound.platform;
  EXPECT_LT(report.comp_all, bound.comp_all_max) << bound.platform;
  EXPECT_LT(report.average, bound.average_max) << bound.platform;
}

INSTANTIATE_TEST_SUITE_P(
    AllPlatforms, TableTwo,
    testing::Values(ErrorBound{"henri", 6.0, 3.0, 4.0},
                    ErrorBound{"henri-subnuma", 8.0, 5.0, 6.0},
                    ErrorBound{"dahu", 6.0, 3.0, 4.0},
                    ErrorBound{"diablo", 4.0, 2.5, 3.0},
                    ErrorBound{"pyxis", 12.0, 5.0, 8.0},
                    ErrorBound{"occigen", 2.0, 1.5, 1.5}),
    [](const testing::TestParamInfo<ErrorBound>& info) {
      std::string name = info.param.platform;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(PaperLessons, OverallAverageErrorBelowFourPercentExcludingPyxis) {
  // The paper's headline: average prediction error < 4 %. pyxis carries
  // quirks the model explicitly cannot express (discussed in §IV-C-1), so
  // the bound is checked on the well-behaved platforms and relaxed there.
  double sum = 0.0;
  int count = 0;
  for (const char* platform :
       {"henri", "henri-subnuma", "dahu", "diablo", "occigen"}) {
    sum += full_report(platform).average;
    ++count;
  }
  EXPECT_LT(sum / count, 4.0);
}

TEST(PaperLessons, OccigenIsTheMostAccuratePlatform) {
  const double occigen = full_report("occigen").average;
  for (const char* platform : {"henri", "dahu", "pyxis"}) {
    EXPECT_LT(occigen, full_report(platform).average) << platform;
  }
}

TEST(PaperLessons, PyxisHasWorstNonSampleCommError) {
  const model::ErrorReport pyxis = full_report("pyxis");
  EXPECT_GT(pyxis.comm_non_samples, pyxis.comm_samples);
  for (const char* platform : {"henri", "dahu", "diablo", "occigen"}) {
    EXPECT_GT(pyxis.comm_non_samples,
              full_report(platform).comm_non_samples)
        << platform;
  }
}

TEST(PaperLessons, ContentionConcentratesOnThePlacementDiagonal) {
  // henri-subnuma, 16 placements: compute bandwidth must collapse only
  // where comp and comm share a NUMA node (paper Fig. 4 discussion).
  bench::SimBackend backend(topo::make_henri_subnuma());
  const bench::SweepResult sweep = bench::run_all_placements(backend);
  const std::size_t n = backend.max_computing_cores();
  for (std::uint32_t comp = 0; comp < 4; ++comp) {
    const double solo =
        backend.machine()
            .steady_compute_alone(n, topo::NumaId(comp))
            .gb();
    for (std::uint32_t comm = 0; comm < 4; ++comm) {
      const double with_comm =
          sweep.curve(topo::NumaId(comp), topo::NumaId(comm))
              .at(n)
              .compute_parallel_gb;
      if (comp == comm) {
        EXPECT_LT(with_comm, solo * 0.97)
            << "diagonal (" << comp << ") should contend";
      } else {
        EXPECT_GT(with_comm, solo * 0.96)
            << "off-diagonal (" << comp << "," << comm
            << ") should not disturb compute";
      }
    }
  }
}

TEST(PaperLessons, BottleneckIsTheControllerNotTheInterSocketBus) {
  // Both streams remote: severe contention only when they target the SAME
  // remote node, although both cross the inter-socket bus either way.
  bench::SimBackend backend(topo::make_henri_subnuma());
  const std::size_t n = backend.max_computing_cores();
  const auto same =
      backend.machine().steady_parallel(n, topo::NumaId(2), topo::NumaId(2));
  const auto different =
      backend.machine().steady_parallel(n, topo::NumaId(2), topo::NumaId(3));
  EXPECT_LT(same.comm.gb() + same.compute.gb(),
            different.comm.gb() + different.compute.gb() - 1.0);
}

TEST(PaperLessons, CommDegradesFirstThenComputation) {
  // On henri's local diagonal, as cores increase: communications lose
  // bandwidth before computations do, and communications never fall below
  // the assured floor.
  bench::SimBackend backend(topo::make_henri());
  const bench::PlacementCurve curve =
      bench::run_placement(backend, topo::NumaId(0), topo::NumaId(0));
  const double nominal_comm = curve.points.front().comm_alone_gb;

  std::size_t first_comm_drop = 0;
  std::size_t first_comp_drop = 0;
  for (const bench::BandwidthPoint& p : curve.points) {
    if (first_comm_drop == 0 && p.comm_parallel_gb < nominal_comm * 0.9) {
      first_comm_drop = p.cores;
    }
    if (first_comp_drop == 0 &&
        p.compute_parallel_gb < p.compute_alone_gb * 0.95) {
      first_comp_drop = p.cores;
    }
  }
  ASSERT_GT(first_comm_drop, 0u) << "communications never degraded";
  if (first_comp_drop != 0) {
    EXPECT_LE(first_comm_drop, first_comp_drop);
  }
  // Assured minimum: comm never reaches zero even fully contended.
  for (const bench::BandwidthPoint& p : curve.points) {
    EXPECT_GT(p.comm_parallel_gb, 2.0);
  }
}

TEST(PaperLessons, SubnumaSymmetryAcrossEquivalentRemoteNodes) {
  // Fig. 4: placements hitting different NUMA nodes of the second socket
  // behave identically (up to noise).
  bench::SimBackend backend(topo::make_henri_subnuma());
  bench::SweepOptions options;
  options.max_cores = 8;
  const auto c22 = bench::run_placement(backend, topo::NumaId(2),
                                        topo::NumaId(2), options);
  const auto c33 = bench::run_placement(backend, topo::NumaId(3),
                                        topo::NumaId(3), options);
  for (std::size_t i = 0; i < c22.points.size(); ++i) {
    EXPECT_NEAR(c22.points[i].compute_parallel_gb,
                c33.points[i].compute_parallel_gb,
                c22.points[i].compute_parallel_gb * 0.05);
  }
}

}  // namespace
}  // namespace mcm
