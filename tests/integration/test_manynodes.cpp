// Reproduction of the paper's §IV-C-1 model limitation on machines with
// many, asymmetric NUMA nodes (the `tetra` 4-socket ring platform).
#include <gtest/gtest.h>

#include "benchlib/backend.hpp"
#include "benchlib/runner.hpp"
#include "model/model.hpp"
#include "topo/platforms.hpp"

namespace mcm {
namespace {

TEST(ManyNodes, TetraStructure) {
  const topo::PlatformSpec spec = topo::make_tetra();
  EXPECT_EQ(spec.machine.socket_count(), 4u);
  EXPECT_EQ(spec.machine.numa_count(), 4u);
  EXPECT_NO_THROW(spec.machine.validate());
}

TEST(ManyNodes, RingLinksAreAsymmetric) {
  const topo::Machine& m = topo::make_tetra().machine;
  const double adjacent =
      m.link(m.inter_socket_link(topo::SocketId(0), topo::SocketId(1)))
          .capacity.gb();
  const double opposite =
      m.link(m.inter_socket_link(topo::SocketId(0), topo::SocketId(2)))
          .capacity.gb();
  EXPECT_GT(adjacent, opposite * 1.5);
  // Symmetric override: (1,3) equals (0,2).
  EXPECT_DOUBLE_EQ(
      m.link(m.inter_socket_link(topo::SocketId(1), topo::SocketId(3)))
          .capacity.gb(),
      opposite);
}

TEST(ManyNodes, OppositeSocketComputeCeilingIsLower) {
  sim::SimMachine m(topo::make_tetra());
  const std::size_t n = m.max_computing_cores();
  // Socket-0 cores writing to adjacent node 1 vs opposite node 2.
  const double adjacent = m.steady_compute_alone(n, topo::NumaId(1)).gb();
  const double opposite = m.steady_compute_alone(n, topo::NumaId(2)).gb();
  EXPECT_GT(adjacent, opposite + 2.0);
  // Node 3 is also adjacent on the ring: equivalent to node 1.
  EXPECT_NEAR(m.steady_compute_alone(n, topo::NumaId(3)).gb(), adjacent,
              0.2);
}

TEST(ManyNodes, HeuristicDegradesOnAsymmetricRemotes) {
  // The paper's limitation, quantified: the placement heuristic stays
  // sharp on its samples but loses accuracy on the non-sample placements
  // of an asymmetric-remote machine — and clearly more so than on the
  // symmetric 4-node machine (henri-subnuma).
  const auto errors = [](const std::string& platform) {
    bench::SimBackend backend(topo::make_platform(platform));
    const auto model = model::ContentionModel::from_backend(backend);
    return model.evaluate_against(bench::run_all_placements(backend));
  };
  const model::ErrorReport tetra = errors("tetra");
  EXPECT_GT(tetra.comm_non_samples, 3.0 * tetra.comm_samples);
  const model::ErrorReport subnuma = errors("henri-subnuma");
  EXPECT_GT(tetra.comm_non_samples, subnuma.comm_non_samples + 3.0);
}

TEST(ManyNodes, WorstPredictionsInvolveTheOppositeSocket) {
  bench::SimBackend backend(topo::make_tetra());
  const auto model = model::ContentionModel::from_backend(backend);
  const model::ErrorReport report =
      model.evaluate_against(bench::run_all_placements(backend));
  // Mean comp error of placements whose computation data sits on the
  // opposite socket (node 2) vs the adjacent ones (nodes 1, 3).
  double opposite = 0.0, adjacent = 0.0;
  int n_opposite = 0, n_adjacent = 0;
  for (const model::PlacementError& p : report.placements) {
    if (p.comp_numa == topo::NumaId(2)) {
      opposite += p.comp_mape;
      ++n_opposite;
    } else if (p.comp_numa == topo::NumaId(1) ||
               p.comp_numa == topo::NumaId(3)) {
      adjacent += p.comp_mape;
      ++n_adjacent;
    }
  }
  ASSERT_GT(n_opposite, 0);
  ASSERT_GT(n_adjacent, 0);
  EXPECT_GT(opposite / n_opposite, adjacent / n_adjacent);
}

}  // namespace
}  // namespace mcm
