#include "topo/render.hpp"

#include <gtest/gtest.h>

namespace mcm::topo {
namespace {

TEST(Render, MentionsEveryStructuralElement) {
  const std::string text = render_platform(make_henri());
  for (const char* token :
       {"platform henri", "socket 0", "socket 1", "numa node 0",
        "numa node 1", "cores 0-17", "cores 18-35", "nic mlx5_0",
        "inter-socket bus", "compute kernel", "noise"}) {
    EXPECT_NE(text.find(token), std::string::npos) << token;
  }
}

TEST(Render, ShowsContentionCharacteristics) {
  const std::string text = render_platform(make_henri());
  EXPECT_NE(text.find("dma floor 4.0 GB/s"), std::string::npos) << text;
  EXPECT_NE(text.find("knee 14 requestors"), std::string::npos) << text;
  EXPECT_NE(text.find("soft-throttle"), std::string::npos) << text;
}

TEST(Render, ShowsNicEfficiencyAsymmetry) {
  const std::string text = render_platform(make_diablo());
  EXPECT_NE(text.find("dma efficiency per numa node: 0.54 1.00"),
            std::string::npos)
      << text;
}

TEST(Render, ShowsPyxisQuirks) {
  const std::string text = render_platform(make_pyxis());
  EXPECT_NE(text.find("cross-numa dma penalty"), std::string::npos);
  EXPECT_NE(text.find("scaling curvature"), std::string::npos);
}

TEST(Render, SubnumaShowsFourNodes) {
  const std::string text = render_platform(make_henri_subnuma());
  EXPECT_NE(text.find("numa node 3"), std::string::npos);
}

}  // namespace
}  // namespace mcm::topo
