#include "topo/ids.hpp"

#include <gtest/gtest.h>

#include <type_traits>
#include <unordered_set>

namespace mcm::topo {
namespace {

TEST(Ids, DefaultConstructedIsInvalid) {
  EXPECT_FALSE(CoreId{}.is_valid());
  EXPECT_EQ(CoreId{}, CoreId::invalid());
}

TEST(Ids, ValueRoundTrip) {
  const NumaId id(7);
  EXPECT_TRUE(id.is_valid());
  EXPECT_EQ(id.value(), 7u);
}

TEST(Ids, Ordering) {
  EXPECT_LT(SocketId(0), SocketId(1));
  EXPECT_EQ(SocketId(3), SocketId(3));
  EXPECT_NE(SocketId(3), SocketId(4));
}

TEST(Ids, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<CoreId, NumaId>);
  static_assert(!std::is_same_v<SocketId, LinkId>);
  SUCCEED();
}

TEST(Ids, Hashable) {
  std::unordered_set<LinkId> set;
  set.insert(LinkId(1));
  set.insert(LinkId(2));
  set.insert(LinkId(1));
  EXPECT_EQ(set.size(), 2u);
}

}  // namespace
}  // namespace mcm::topo
