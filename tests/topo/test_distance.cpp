#include "topo/distance.hpp"

#include <gtest/gtest.h>

#include "topo/builder.hpp"

namespace mcm::topo {
namespace {

Machine machine(std::size_t sockets, std::size_t numa_per_socket) {
  TopologyBuilder b;
  b.add_sockets(sockets, 2);
  b.add_numa_per_socket(numa_per_socket, Bandwidth::gb_per_s(50.0),
                        ContentionSpec{});
  if (sockets > 1) {
    b.set_remote_port_capacity(Bandwidth::gb_per_s(25.0), ContentionSpec{});
    b.set_inter_socket_capacity(Bandwidth::gb_per_s(40.0), ContentionSpec{});
  }
  return b.build();
}

TEST(Distance, DiagonalIsSelfDistance) {
  const DistanceMatrix d(machine(2, 2));
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(d.at(NumaId(i), NumaId(i)), 10u);
  }
}

TEST(Distance, SameSocketBeatsCrossSocket) {
  const DistanceMatrix d(machine(2, 2));
  EXPECT_LT(d.at(NumaId(0), NumaId(1)), d.at(NumaId(0), NumaId(2)));
}

TEST(Distance, Symmetric) {
  const DistanceMatrix d(machine(2, 2));
  for (std::uint32_t i = 0; i < 4; ++i) {
    for (std::uint32_t j = 0; j < 4; ++j) {
      EXPECT_EQ(d.at(NumaId(i), NumaId(j)), d.at(NumaId(j), NumaId(i)));
    }
  }
}

TEST(Distance, IsLocalMatchesSocketStructure) {
  const DistanceMatrix d(machine(2, 2));
  EXPECT_TRUE(d.is_local(NumaId(0), NumaId(0)));
  EXPECT_TRUE(d.is_local(NumaId(0), NumaId(1)));
  EXPECT_FALSE(d.is_local(NumaId(0), NumaId(2)));
}

TEST(Distance, NearestOtherPrefersSameSocket) {
  const DistanceMatrix d(machine(2, 2));
  EXPECT_EQ(d.nearest_other(NumaId(0)), NumaId(1));
  EXPECT_EQ(d.nearest_other(NumaId(3)), NumaId(2));
}

TEST(Distance, NearestOtherCrossSocketWhenSingleNodePerSocket) {
  const DistanceMatrix d(machine(2, 1));
  EXPECT_EQ(d.nearest_other(NumaId(0)), NumaId(1));
}

TEST(Distance, SizeMatchesNumaCount) {
  EXPECT_EQ(DistanceMatrix(machine(2, 2)).size(), 4u);
  EXPECT_EQ(DistanceMatrix(machine(2, 1)).size(), 2u);
}

}  // namespace
}  // namespace mcm::topo
