#include "topo/topology_io.hpp"

#include <gtest/gtest.h>

namespace mcm::topo {
namespace {

class RoundTrip : public testing::TestWithParam<const char*> {};

TEST_P(RoundTrip, SerializeParseSerializeIsStable) {
  const PlatformSpec original = make_platform(GetParam());
  const std::string text = serialize_platform(original);
  std::string error;
  const auto parsed = parse_platform(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(serialize_platform(*parsed), text);
}

TEST_P(RoundTrip, ParsedSpecMatchesOriginalStructure) {
  const PlatformSpec original = make_platform(GetParam());
  const auto parsed = parse_platform(serialize_platform(original));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->name, original.name);
  EXPECT_EQ(parsed->processor, original.processor);
  EXPECT_EQ(parsed->seed, original.seed);
  EXPECT_EQ(parsed->machine.socket_count(), original.machine.socket_count());
  EXPECT_EQ(parsed->machine.core_count(), original.machine.core_count());
  EXPECT_EQ(parsed->machine.numa_count(), original.machine.numa_count());
  EXPECT_DOUBLE_EQ(parsed->compute.per_core_local.gb(),
                   original.compute.per_core_local.gb());
  EXPECT_DOUBLE_EQ(parsed->noise.comm_sigma, original.noise.comm_sigma);
  const Nic& a = parsed->machine.nic(NicId(0));
  const Nic& b = original.machine.nic(NicId(0));
  EXPECT_EQ(a.socket, b.socket);
  EXPECT_EQ(a.dma_efficiency.size(), b.dma_efficiency.size());
  for (std::size_t i = 0; i < a.dma_efficiency.size(); ++i) {
    EXPECT_NEAR(a.dma_efficiency[i], b.dma_efficiency[i], 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPlatforms, RoundTrip,
                         testing::Values("henri", "henri-subnuma", "dahu",
                                         "diablo", "pyxis", "occigen"),
                         [](const testing::TestParamInfo<const char*>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(TopologyIo, MinimalSingleSocketSpec) {
  const std::string text = R"(# minimal machine
platform tiny
sockets 1
cores_per_socket 2
numa_per_socket 1
controller.capacity_gb 20
compute.local_gb 4
compute.remote_gb 4
)";
  std::string error;
  const auto spec = parse_platform(text, &error);
  ASSERT_TRUE(spec.has_value()) << error;
  EXPECT_EQ(spec->name, "tiny");
  EXPECT_EQ(spec->machine.core_count(), 2u);
  EXPECT_TRUE(spec->machine.nics().empty());
}

TEST(TopologyIo, MissingRequiredKeyReportsError) {
  std::string error;
  const auto spec = parse_platform("platform x\nsockets 1\n", &error);
  EXPECT_FALSE(spec.has_value());
  EXPECT_NE(error.find("missing key"), std::string::npos) << error;
}

TEST(TopologyIo, MalformedLineReportsLineNumber) {
  std::string error;
  const auto spec = parse_platform("platform x\nbogusline\n", &error);
  EXPECT_FALSE(spec.has_value());
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
}

TEST(TopologyIo, NonNumericValueReportsKey) {
  std::string error;
  const auto spec = parse_platform(
      "platform x\nsockets quux\ncores_per_socket 1\nnuma_per_socket 1\n"
      "controller.capacity_gb 10\ncompute.local_gb 1\ncompute.remote_gb 1\n",
      &error);
  EXPECT_FALSE(spec.has_value());
  EXPECT_NE(error.find("sockets"), std::string::npos) << error;
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
}

TEST(TopologyIo, TrailingGarbageAfterNumberIsRejected) {
  // std::stod would have parsed "10.0junk" as 10.0; the classic-locale
  // helper rejects partially-consumed values and names the line.
  std::string error;
  const auto spec = parse_platform(
      "platform x\nsockets 1\ncores_per_socket 1\nnuma_per_socket 1\n"
      "controller.capacity_gb 10.0junk\ncompute.local_gb 1\n"
      "compute.remote_gb 1\n",
      &error);
  EXPECT_FALSE(spec.has_value());
  EXPECT_NE(error.find("controller.capacity_gb"), std::string::npos)
      << error;
  EXPECT_NE(error.find("line 5"), std::string::npos) << error;
  EXPECT_NE(error.find("10.0junk"), std::string::npos) << error;
}

TEST(TopologyIo, GarbageEfficiencyFieldReportsLineAndColumn) {
  const std::string text = R"(platform x
sockets 2
cores_per_socket 2
numa_per_socket 1
controller.capacity_gb 20
remote_port.capacity_gb 10
inter_socket.capacity_gb 15
nic.name n0
nic.socket 0
nic.wire_gb 10
nic.pcie_gb 12
nic.efficiency 1.0 0.9oops
compute.local_gb 4
compute.remote_gb 3
)";
  std::string error;
  const auto spec = parse_platform(text, &error);
  EXPECT_FALSE(spec.has_value());
  EXPECT_NE(error.find("nic.efficiency"), std::string::npos) << error;
  EXPECT_NE(error.find("line 12"), std::string::npos) << error;
  EXPECT_NE(error.find("field 2"), std::string::npos) << error;
}

TEST(TopologyIo, GarbageSeedIsRejected) {
  std::string error;
  const auto spec = parse_platform(
      "platform x\nseed 12junk\nsockets 1\ncores_per_socket 1\n"
      "numa_per_socket 1\ncontroller.capacity_gb 10\ncompute.local_gb 1\n"
      "compute.remote_gb 1\n",
      &error);
  EXPECT_FALSE(spec.has_value());
  EXPECT_NE(error.find("seed"), std::string::npos) << error;
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
}

TEST(TopologyIo, WrongEfficiencyCountReportsError) {
  const std::string text = R"(platform x
sockets 2
cores_per_socket 2
numa_per_socket 1
controller.capacity_gb 20
remote_port.capacity_gb 10
inter_socket.capacity_gb 15
nic.name n0
nic.socket 0
nic.wire_gb 10
nic.pcie_gb 12
nic.efficiency 1.0
compute.local_gb 4
compute.remote_gb 3
)";
  std::string error;
  const auto spec = parse_platform(text, &error);
  EXPECT_FALSE(spec.has_value());
  EXPECT_NE(error.find("nic.efficiency"), std::string::npos) << error;
}

TEST(TopologyIo, CommentsAndBlankLinesIgnored) {
  const std::string text =
      "\n# comment\nplatform tiny\nsockets 1\ncores_per_socket 1\n"
      "numa_per_socket 1\ncontroller.capacity_gb 10\n\n"
      "compute.local_gb 2\ncompute.remote_gb 2\n";
  EXPECT_TRUE(parse_platform(text).has_value());
}

}  // namespace
}  // namespace mcm::topo
