#include "topo/builder.hpp"

#include <gtest/gtest.h>

#include "util/contracts.hpp"

namespace mcm::topo {
namespace {

ContentionSpec some_spec() {
  ContentionSpec spec;
  spec.dma_floor = Bandwidth::gb_per_s(2.0);
  spec.requestor_knee = 8.0;
  spec.degradation_per_requestor = Bandwidth::gb_per_s(0.5);
  spec.dma_requestor_weight = 2.0;
  return spec;
}

Machine dual_socket_machine() {
  TopologyBuilder b;
  b.add_sockets(2, 4);
  b.add_numa_per_socket(2, Bandwidth::gb_per_s(50.0), some_spec());
  b.set_remote_port_capacity(Bandwidth::gb_per_s(25.0), some_spec());
  b.set_inter_socket_capacity(Bandwidth::gb_per_s(40.0), some_spec());
  b.add_nic("nic0", SocketId(0), Bandwidth::gb_per_s(10.0),
            Bandwidth::gb_per_s(12.0));
  return b.build();
}

TEST(Builder, BuildsExpectedCounts) {
  const Machine m = dual_socket_machine();
  EXPECT_EQ(m.socket_count(), 2u);
  EXPECT_EQ(m.core_count(), 8u);
  EXPECT_EQ(m.numa_count(), 4u);
  EXPECT_EQ(m.cores_per_socket(), 4u);
  EXPECT_EQ(m.numa_per_socket(), 2u);
  EXPECT_EQ(m.nics().size(), 1u);
  // 4 controllers + 4 remote ports + 1 inter-socket + 1 pcie.
  EXPECT_EQ(m.links().size(), 10u);
}

TEST(Builder, CoreAndNumaIdsAreDensePerSocket) {
  const Machine m = dual_socket_machine();
  EXPECT_EQ(m.socket_of_core(CoreId(0)), SocketId(0));
  EXPECT_EQ(m.socket_of_core(CoreId(3)), SocketId(0));
  EXPECT_EQ(m.socket_of_core(CoreId(4)), SocketId(1));
  EXPECT_EQ(m.socket_of_numa(NumaId(0)), SocketId(0));
  EXPECT_EQ(m.socket_of_numa(NumaId(1)), SocketId(0));
  EXPECT_EQ(m.socket_of_numa(NumaId(2)), SocketId(1));
  EXPECT_EQ(m.first_numa_of(SocketId(1)), NumaId(2));
}

TEST(Builder, NicDefaultsNearFirstNumaOfItsSocket) {
  const Machine m = dual_socket_machine();
  const Nic& nic = m.nic(NicId(0));
  EXPECT_EQ(nic.socket, SocketId(0));
  EXPECT_EQ(nic.near_numa, NumaId(0));
  EXPECT_EQ(m.link(nic.pcie).kind, LinkKind::kPcie);
}

TEST(Builder, NicEfficiencyOverride) {
  TopologyBuilder b;
  b.add_sockets(2, 2);
  b.add_numa_per_socket(1, Bandwidth::gb_per_s(50.0), some_spec());
  b.set_remote_port_capacity(Bandwidth::gb_per_s(25.0), some_spec());
  b.set_inter_socket_capacity(Bandwidth::gb_per_s(40.0), some_spec());
  b.add_nic("nic0", SocketId(1), Bandwidth::gb_per_s(20.0),
            Bandwidth::gb_per_s(25.0));
  b.set_nic_dma_efficiency(NicId(0), NumaId(0), 0.5);
  const Machine m = b.build();
  EXPECT_DOUBLE_EQ(m.nic_nominal_bandwidth(NicId(0), NumaId(0)).gb(), 10.0);
  EXPECT_DOUBLE_EQ(m.nic_nominal_bandwidth(NicId(0), NumaId(1)).gb(), 20.0);
  EXPECT_EQ(m.nic(NicId(0)).near_numa, NumaId(1));
}

TEST(Builder, SingleSocketNeedsNoInterSocketLink) {
  TopologyBuilder b;
  b.add_sockets(1, 4);
  b.add_numa_per_socket(1, Bandwidth::gb_per_s(50.0), some_spec());
  const Machine m = b.build();
  EXPECT_EQ(m.socket_count(), 1u);
  // 1 controller + 1 remote port.
  EXPECT_EQ(m.links().size(), 2u);
}

TEST(Builder, DualSocketRequiresInterSocketAndRemotePort) {
  TopologyBuilder b;
  b.add_sockets(2, 4);
  b.add_numa_per_socket(1, Bandwidth::gb_per_s(50.0), some_spec());
  EXPECT_THROW((void)b.build(), ContractViolation);
}

TEST(Builder, RejectsDoubleSocketDeclaration) {
  TopologyBuilder b;
  b.add_sockets(2, 4);
  EXPECT_THROW(b.add_sockets(2, 4), ContractViolation);
}

TEST(Builder, RejectsNicOnUnknownSocket) {
  TopologyBuilder b;
  b.add_sockets(1, 2);
  EXPECT_THROW(b.add_nic("x", SocketId(3), Bandwidth::gb_per_s(1.0),
                         Bandwidth::gb_per_s(1.0)),
               ContractViolation);
}

TEST(Builder, RejectsOutOfRangeEfficiency) {
  TopologyBuilder b;
  b.add_sockets(1, 2);
  b.add_numa_per_socket(1, Bandwidth::gb_per_s(10.0), some_spec());
  b.add_nic("x", SocketId(0), Bandwidth::gb_per_s(1.0),
            Bandwidth::gb_per_s(1.0));
  EXPECT_THROW(b.set_nic_dma_efficiency(NicId(0), NumaId(0), 0.0),
               ContractViolation);
  EXPECT_THROW(b.set_nic_dma_efficiency(NicId(0), NumaId(0), 1.5),
               ContractViolation);
}

TEST(Builder, BuiltMachinePassesValidation) {
  const Machine m = dual_socket_machine();
  EXPECT_NO_THROW(m.validate());
}

}  // namespace
}  // namespace mcm::topo
