#include "topo/platforms.hpp"

#include <gtest/gtest.h>

#include "util/contracts.hpp"

namespace mcm::topo {
namespace {

// Table I structural facts, platform by platform.
struct TableRow {
  const char* name;
  std::size_t cores_per_socket;
  std::size_t numa_total;
  const char* network;
};

class PlatformTable : public testing::TestWithParam<TableRow> {};

TEST_P(PlatformTable, MatchesTableOne) {
  const TableRow row = GetParam();
  const PlatformSpec spec = make_platform(row.name);
  EXPECT_EQ(spec.name, row.name);
  EXPECT_EQ(spec.machine.socket_count(), 2u);
  EXPECT_EQ(spec.machine.cores_per_socket(), row.cores_per_socket);
  EXPECT_EQ(spec.machine.numa_count(), row.numa_total);
  EXPECT_EQ(spec.network, row.network);
  EXPECT_NO_THROW(spec.machine.validate());
}

TEST_P(PlatformTable, HasExactlyOneNic) {
  const PlatformSpec spec = make_platform(GetParam().name);
  EXPECT_EQ(spec.machine.nics().size(), 1u);
}

TEST_P(PlatformTable, ComputeProfileIsPositiveAndLocalFasterThanRemote) {
  const PlatformSpec spec = make_platform(GetParam().name);
  EXPECT_GT(spec.compute.per_core_local.gb(), 0.0);
  EXPECT_GT(spec.compute.per_core_remote.gb(), 0.0);
  EXPECT_GE(spec.compute.per_core_local.gb(),
            spec.compute.per_core_remote.gb());
}

TEST_P(PlatformTable, SeedsAreStablePerPlatform) {
  const PlatformSpec a = make_platform(GetParam().name);
  const PlatformSpec b = make_platform(GetParam().name);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_NE(a.seed, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllPlatforms, PlatformTable,
    testing::Values(TableRow{"henri", 18, 2, "InfiniBand"},
                    TableRow{"henri-subnuma", 18, 4, "InfiniBand"},
                    TableRow{"dahu", 16, 2, "Omni-Path"},
                    TableRow{"diablo", 32, 2, "InfiniBand"},
                    TableRow{"pyxis", 32, 2, "InfiniBand"},
                    TableRow{"occigen", 14, 2, "InfiniBand"}),
    [](const testing::TestParamInfo<TableRow>& info) {
      std::string name = info.param.name;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(Platforms, RegistryListsSixPlatformsInPaperOrder) {
  const auto names = platform_names();
  ASSERT_EQ(names.size(), 6u);
  EXPECT_EQ(names[0], "henri");
  EXPECT_EQ(names[1], "henri-subnuma");
  EXPECT_EQ(names[5], "occigen");
}

TEST(Platforms, UnknownNameThrows) {
  EXPECT_THROW((void)make_platform("not-a-platform"), mcm::ContractViolation);
}

TEST(Platforms, DiabloNicSitsOnSecondSocketAndIsLocalitySensitive) {
  const PlatformSpec spec = make_diablo();
  const Nic& nic = spec.machine.nic(NicId(0));
  EXPECT_EQ(nic.socket, SocketId(1));
  // Paper §IV-B-c: 22.4 GB/s next to the NIC, 12.1 GB/s across the fabric.
  EXPECT_NEAR(spec.machine.nic_nominal_bandwidth(NicId(0), NumaId(1)).gb(),
              22.4, 0.1);
  EXPECT_NEAR(spec.machine.nic_nominal_bandwidth(NicId(0), NumaId(0)).gb(),
              12.1, 0.2);
}

TEST(Platforms, PyxisCarriesTheQuirksTheModelCannotSee) {
  const PlatformSpec spec = make_pyxis();
  EXPECT_GT(spec.noise.cross_numa_dma_penalty, 0.0);
  EXPECT_GT(spec.noise.comm_sigma, make_henri().noise.comm_sigma);
  EXPECT_GT(spec.compute.scaling_curvature, 0.0);
}

TEST(Platforms, OccigenDmaFloorsKeepCommAtNominal) {
  // "Only computations are impacted": the DMA floor of every contended link
  // must sit at or above the nominal network bandwidth.
  const PlatformSpec spec = make_occigen();
  const Machine& m = spec.machine;
  const double worst_nominal =
      m.nic_nominal_bandwidth(NicId(0), NumaId(1)).gb();
  const Link& port = m.link(m.remote_port_of(NumaId(1)));
  EXPECT_GE(port.contention.dma_floor.gb(), worst_nominal * 0.95);
}

TEST(Platforms, HenriSubnumaSharesHenriStructureWithMoreNodes) {
  const PlatformSpec henri = make_henri();
  const PlatformSpec sub = make_henri_subnuma();
  EXPECT_EQ(henri.machine.cores_per_socket(),
            sub.machine.cores_per_socket());
  EXPECT_EQ(henri.machine.numa_per_socket(), 1u);
  EXPECT_EQ(sub.machine.numa_per_socket(), 2u);
  EXPECT_EQ(henri.processor, sub.processor);
}

}  // namespace
}  // namespace mcm::topo
