#include "topo/topology.hpp"

#include <gtest/gtest.h>

#include "topo/builder.hpp"

namespace mcm::topo {
namespace {

ContentionSpec plain_spec() { return ContentionSpec{}; }

Machine machine_2x2() {
  TopologyBuilder b;
  b.add_sockets(2, 4);
  b.add_numa_per_socket(2, Bandwidth::gb_per_s(50.0), plain_spec());
  b.set_remote_port_capacity(Bandwidth::gb_per_s(25.0), plain_spec());
  b.set_inter_socket_capacity(Bandwidth::gb_per_s(40.0), plain_spec());
  b.add_nic("nic0", SocketId(0), Bandwidth::gb_per_s(10.0),
            Bandwidth::gb_per_s(12.0));
  return b.build();
}

TEST(Topology, IsLocal) {
  const Machine m = machine_2x2();
  EXPECT_TRUE(m.is_local(SocketId(0), NumaId(0)));
  EXPECT_TRUE(m.is_local(SocketId(0), NumaId(1)));
  EXPECT_FALSE(m.is_local(SocketId(0), NumaId(2)));
  EXPECT_TRUE(m.is_local(SocketId(1), NumaId(3)));
}

TEST(Topology, LocalCpuPathIsControllerOnly) {
  const Machine m = machine_2x2();
  const auto path = m.cpu_path(SocketId(0), NumaId(1));
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0], m.controller_of(NumaId(1)));
  EXPECT_EQ(m.link(path[0]).kind, LinkKind::kMemoryController);
}

TEST(Topology, RemoteCpuPathCrossesBusPortController) {
  const Machine m = machine_2x2();
  const auto path = m.cpu_path(SocketId(0), NumaId(3));
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(m.link(path[0]).kind, LinkKind::kInterSocket);
  EXPECT_EQ(path[1], m.remote_port_of(NumaId(3)));
  EXPECT_EQ(path[2], m.controller_of(NumaId(3)));
}

TEST(Topology, LocalDmaPathIsPcieThenController) {
  const Machine m = machine_2x2();
  const auto path = m.dma_path(NicId(0), NumaId(0));
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(m.link(path[0]).kind, LinkKind::kPcie);
  EXPECT_EQ(path[1], m.controller_of(NumaId(0)));
}

TEST(Topology, RemoteDmaPathCrossesBusAndPort) {
  const Machine m = machine_2x2();
  const auto path = m.dma_path(NicId(0), NumaId(2));
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(m.link(path[0]).kind, LinkKind::kPcie);
  EXPECT_EQ(m.link(path[1]).kind, LinkKind::kInterSocket);
  EXPECT_EQ(path[2], m.remote_port_of(NumaId(2)));
  EXPECT_EQ(path[3], m.controller_of(NumaId(2)));
}

TEST(Topology, InterSocketLinkIsSymmetric) {
  const Machine m = machine_2x2();
  EXPECT_EQ(m.inter_socket_link(SocketId(0), SocketId(1)),
            m.inter_socket_link(SocketId(1), SocketId(0)));
}

TEST(Topology, InterSocketLinkRejectsSameSocket) {
  const Machine m = machine_2x2();
  EXPECT_THROW((void)m.inter_socket_link(SocketId(0), SocketId(0)),
               mcm::ContractViolation);
}

TEST(Topology, ElementAccessValidatesIds) {
  const Machine m = machine_2x2();
  EXPECT_THROW((void)m.core(CoreId(99)), mcm::ContractViolation);
  EXPECT_THROW((void)m.numa(NumaId::invalid()), mcm::ContractViolation);
  EXPECT_THROW((void)m.link(LinkId(1000)), mcm::ContractViolation);
  EXPECT_THROW((void)m.nic(NicId(5)), mcm::ContractViolation);
}

TEST(Topology, LinkKindNames) {
  EXPECT_STREQ(to_string(LinkKind::kMemoryController), "memory-controller");
  EXPECT_STREQ(to_string(LinkKind::kRemotePort), "remote-port");
  EXPECT_STREQ(to_string(LinkKind::kInterSocket), "inter-socket");
  EXPECT_STREQ(to_string(LinkKind::kPcie), "pcie");
}

TEST(Topology, NicNominalBandwidthUsesEfficiency) {
  TopologyBuilder b;
  b.add_sockets(2, 2);
  b.add_numa_per_socket(1, Bandwidth::gb_per_s(50.0), plain_spec());
  b.set_remote_port_capacity(Bandwidth::gb_per_s(25.0), plain_spec());
  b.set_inter_socket_capacity(Bandwidth::gb_per_s(40.0), plain_spec());
  b.add_nic("nic0", SocketId(0), Bandwidth::gb_per_s(12.0),
            Bandwidth::gb_per_s(14.0));
  b.set_nic_dma_efficiency(NicId(0), NumaId(1), 0.75);
  const Machine m = b.build();
  EXPECT_DOUBLE_EQ(m.nic_nominal_bandwidth(NicId(0), NumaId(0)).gb(), 12.0);
  EXPECT_DOUBLE_EQ(m.nic_nominal_bandwidth(NicId(0), NumaId(1)).gb(), 9.0);
}

}  // namespace
}  // namespace mcm::topo
