// Property-based tests of the arbiter: random machines and random stream
// mixes, checking the invariants that must hold for every input.
#include <gtest/gtest.h>

#include "sim/arbiter.hpp"
#include "topo/builder.hpp"
#include "util/rng.hpp"

namespace mcm::sim {
namespace {

using topo::ContentionSpec;
using topo::Machine;
using topo::NicId;
using topo::NumaId;
using topo::SocketId;
using topo::TopologyBuilder;

struct RandomCase {
  Machine machine;
  std::vector<StreamSpec> streams;
};

RandomCase make_case(std::uint64_t seed) {
  Rng rng(seed);

  const auto random_spec = [&] {
    ContentionSpec spec;
    spec.dma_floor = Bandwidth::gb_per_s(rng.uniform(0.0, 6.0));
    spec.requestor_knee = rng.uniform(2.0, 40.0);
    spec.degradation_per_requestor =
        Bandwidth::gb_per_s(rng.uniform(0.0, 1.5));
    spec.dma_requestor_weight = rng.uniform(0.5, 4.0);
    spec.dma_soft_start = rng.uniform(0.4, 1.0);
    spec.dma_soft_min = rng.uniform(0.3, 1.0);
    return spec;
  };

  RandomCase out;
  const std::size_t numa_per_socket = 1 + rng.uniform_below(2);
  TopologyBuilder b;
  b.add_sockets(2, 4 + rng.uniform_below(12));
  b.add_numa_per_socket(numa_per_socket,
                        Bandwidth::gb_per_s(rng.uniform(30.0, 120.0)),
                        random_spec());
  b.set_remote_port_capacity(Bandwidth::gb_per_s(rng.uniform(15.0, 60.0)),
                             random_spec());
  b.set_inter_socket_capacity(Bandwidth::gb_per_s(rng.uniform(30.0, 90.0)),
                              random_spec());
  b.add_nic("nic", SocketId(rng.uniform_below(2)),
            Bandwidth::gb_per_s(rng.uniform(5.0, 25.0)),
            Bandwidth::gb_per_s(rng.uniform(8.0, 30.0)));
  out.machine = b.build();

  const std::size_t numa_count = out.machine.numa_count();
  const std::size_t cpu_streams = rng.uniform_below(20);
  for (std::size_t i = 0; i < cpu_streams; ++i) {
    StreamSpec stream;
    stream.cls = StreamClass::kCpu;
    stream.demand = Bandwidth::gb_per_s(rng.uniform(0.0, 8.0));
    const SocketId source(static_cast<std::uint32_t>(rng.uniform_below(2)));
    const NumaId target(
        static_cast<std::uint32_t>(rng.uniform_below(numa_count)));
    stream.path = out.machine.cpu_path(source, target);
    stream.source_socket = source;
    out.streams.push_back(std::move(stream));
  }
  const std::size_t dma_streams = rng.uniform_below(3);
  for (std::size_t i = 0; i < dma_streams; ++i) {
    StreamSpec stream;
    stream.cls = StreamClass::kDma;
    stream.demand = Bandwidth::gb_per_s(rng.uniform(0.5, 25.0));
    const NumaId target(
        static_cast<std::uint32_t>(rng.uniform_below(numa_count)));
    stream.path = out.machine.dma_path(NicId(0), target);
    stream.source_socket = out.machine.nic(NicId(0)).socket;
    out.streams.push_back(std::move(stream));
  }
  return out;
}

class ArbiterProperty : public testing::TestWithParam<std::uint64_t> {};

TEST_P(ArbiterProperty, InvariantsHoldOnRandomInputs) {
  const RandomCase c = make_case(GetParam());
  for (const ArbitrationPolicy policy :
       {ArbitrationPolicy::kCpuPriorityWithFloor,
        ArbitrationPolicy::kFairShare}) {
    Arbiter arbiter(c.machine, policy);
    const ArbiterResult result = arbiter.solve(c.streams);

    ASSERT_EQ(result.allocation.size(), c.streams.size());
    // 1. Allocations bounded by demand, non-negative.
    for (std::size_t i = 0; i < c.streams.size(); ++i) {
      EXPECT_GE(result.allocation[i].gb(), -1e-9);
      EXPECT_LE(result.allocation[i].gb(),
                c.streams[i].demand.gb() + 1e-9);
    }
    // 2. No link over effective capacity.
    for (std::size_t l = 0; l < c.machine.links().size(); ++l) {
      EXPECT_LE(result.link_usage[l].gb(),
                result.link_effective_capacity[l].gb() + 1e-6)
          << "link " << l << " policy " << to_string(policy);
    }
    // 3. Deterministic.
    const ArbiterResult again = arbiter.solve(c.streams);
    for (std::size_t i = 0; i < c.streams.size(); ++i) {
      EXPECT_DOUBLE_EQ(result.allocation[i].gb(), again.allocation[i].gb());
    }
    // 4. Solver terminated within its budget.
    EXPECT_LE(result.iterations, 200);
  }
}

TEST_P(ArbiterProperty, UncontendedStreamsKeepTheirDemand) {
  // Scale all demands down massively: nothing can contend, everyone gets
  // exactly their (tiny) demand.
  RandomCase c = make_case(GetParam());
  for (StreamSpec& stream : c.streams) stream.demand = stream.demand / 1e4;
  Arbiter arbiter(c.machine);
  const ArbiterResult result = arbiter.solve(c.streams);
  for (std::size_t i = 0; i < c.streams.size(); ++i) {
    EXPECT_NEAR(result.allocation[i].gb(), c.streams[i].demand.gb(),
                1e-9);
  }
}

TEST_P(ArbiterProperty, ScalingAllDemandsNeverRaisesTotalAboveCapacity) {
  RandomCase c = make_case(GetParam());
  Arbiter arbiter(c.machine);
  for (const double factor : {1.0, 2.0, 8.0}) {
    std::vector<StreamSpec> streams = c.streams;
    for (StreamSpec& stream : streams) {
      stream.demand = stream.demand * factor;
    }
    const ArbiterResult result = arbiter.solve(streams);
    for (std::size_t l = 0; l < c.machine.links().size(); ++l) {
      EXPECT_LE(result.link_usage[l].gb(),
                result.link_effective_capacity[l].gb() + 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArbiterProperty,
                         testing::Range<std::uint64_t>(1, 25));

}  // namespace
}  // namespace mcm::sim
