#include "sim/arbiter.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "topo/builder.hpp"

namespace mcm::sim {
namespace {

using topo::ContentionSpec;
using topo::LinkId;
using topo::Machine;
using topo::NicId;
using topo::NumaId;
using topo::SocketId;
using topo::TopologyBuilder;

/// 2 sockets x 1 NUMA, controller 50 GB/s with 5 GB/s DMA floor, remote
/// port 25 GB/s, one 10 GB/s NIC behind socket 0.
Machine test_machine(double knee = 1e9, double degradation = 0.0,
                     double dma_weight = 2.0) {
  ContentionSpec mc;
  mc.dma_floor = Bandwidth::gb_per_s(5.0);
  mc.requestor_knee = knee;
  mc.degradation_per_requestor = Bandwidth::gb_per_s(degradation);
  mc.dma_requestor_weight = dma_weight;

  ContentionSpec port;
  port.dma_floor = Bandwidth::gb_per_s(3.0);
  port.requestor_knee = knee;
  port.degradation_per_requestor = Bandwidth::gb_per_s(degradation);
  port.dma_requestor_weight = dma_weight;

  TopologyBuilder b;
  b.add_sockets(2, 8);
  b.add_numa_per_socket(1, Bandwidth::gb_per_s(50.0), mc);
  b.set_remote_port_capacity(Bandwidth::gb_per_s(25.0), port);
  b.set_inter_socket_capacity(Bandwidth::gb_per_s(40.0), ContentionSpec{});
  b.add_nic("nic", SocketId(0), Bandwidth::gb_per_s(10.0),
            Bandwidth::gb_per_s(12.0));
  return b.build();
}

StreamSpec cpu_stream(const Machine& m, double gb, NumaId numa) {
  StreamSpec s;
  s.cls = StreamClass::kCpu;
  s.demand = Bandwidth::gb_per_s(gb);
  s.path = m.cpu_path(SocketId(0), numa);
  return s;
}

StreamSpec dma_stream(const Machine& m, double gb, NumaId numa) {
  StreamSpec s;
  s.cls = StreamClass::kDma;
  s.demand = Bandwidth::gb_per_s(gb);
  s.path = m.dma_path(NicId(0), numa);
  return s;
}

double total_gb(const ArbiterResult& r) {
  double acc = 0.0;
  for (Bandwidth bw : r.allocation) acc += bw.gb();
  return acc;
}

TEST(Arbiter, NoContentionMeansFullDemand) {
  const Machine m = test_machine();
  Arbiter arbiter(m);
  std::vector<StreamSpec> streams;
  for (int i = 0; i < 4; ++i) {
    streams.push_back(cpu_stream(m, 5.0, NumaId(0)));  // 20 < 45
  }
  streams.push_back(dma_stream(m, 10.0, NumaId(0)));  // 30 < 50
  const ArbiterResult r = arbiter.solve(streams);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(r.allocation[i].gb(), 5.0, 1e-6);
  }
  EXPECT_NEAR(r.allocation[4].gb(), 10.0, 1e-6);
}

TEST(Arbiter, LinkUsageNeverExceedsEffectiveCapacity) {
  const Machine m = test_machine();
  Arbiter arbiter(m);
  std::vector<StreamSpec> streams;
  for (int i = 0; i < 12; ++i) {
    streams.push_back(cpu_stream(m, 6.0, NumaId(0)));  // 72 >> 50
  }
  streams.push_back(dma_stream(m, 10.0, NumaId(0)));
  const ArbiterResult r = arbiter.solve(streams);
  for (std::size_t l = 0; l < m.links().size(); ++l) {
    EXPECT_LE(r.link_usage[l].gb(),
              r.link_effective_capacity[l].gb() + 1e-6)
        << "link " << m.link(LinkId(static_cast<std::uint32_t>(l))).name;
  }
}

TEST(Arbiter, AllocationsNeverExceedDemand) {
  const Machine m = test_machine();
  Arbiter arbiter(m);
  std::vector<StreamSpec> streams;
  for (int i = 0; i < 12; ++i) streams.push_back(cpu_stream(m, 6.0, NumaId(0)));
  streams.push_back(dma_stream(m, 10.0, NumaId(0)));
  const ArbiterResult r = arbiter.solve(streams);
  for (std::size_t i = 0; i < streams.size(); ++i) {
    EXPECT_LE(r.allocation[i].gb(), streams[i].demand.gb() + 1e-9);
    EXPECT_GE(r.allocation[i].gb(), 0.0);
  }
}

TEST(Arbiter, DmaFloorIsGuaranteedUnderCpuPressure) {
  const Machine m = test_machine();
  Arbiter arbiter(m);
  std::vector<StreamSpec> streams;
  // CPU demand alone (72 GB/s) would fill the 50 GB/s controller entirely.
  for (int i = 0; i < 12; ++i) streams.push_back(cpu_stream(m, 6.0, NumaId(0)));
  streams.push_back(dma_stream(m, 10.0, NumaId(0)));
  const ArbiterResult r = arbiter.solve(streams);
  // DMA keeps the configured 5 GB/s floor of the controller link.
  EXPECT_NEAR(r.allocation.back().gb(), 5.0, 1e-3);
}

TEST(Arbiter, CpuHasPriorityOverDma) {
  const Machine m = test_machine();
  Arbiter arbiter(m);
  // 8 cores x 5.5 = 44; with 10 of DMA the 50 GB/s controller is over
  // capacity. CPU must get its full 44, DMA the remaining 6.
  std::vector<StreamSpec> streams;
  for (int i = 0; i < 8; ++i) streams.push_back(cpu_stream(m, 5.5, NumaId(0)));
  streams.push_back(dma_stream(m, 10.0, NumaId(0)));
  const ArbiterResult r = arbiter.solve(streams);
  double cpu = 0.0;
  for (int i = 0; i < 8; ++i) cpu += r.allocation[i].gb();
  EXPECT_NEAR(cpu, 44.0, 1e-3);
  EXPECT_NEAR(r.allocation.back().gb(), 6.0, 1e-3);
}

TEST(Arbiter, FairShareWithinCpuClass) {
  const Machine m = test_machine();
  Arbiter arbiter(m);
  std::vector<StreamSpec> streams;
  for (int i = 0; i < 10; ++i) streams.push_back(cpu_stream(m, 6.0, NumaId(0)));
  const ArbiterResult r = arbiter.solve(streams);
  for (std::size_t i = 1; i < streams.size(); ++i) {
    EXPECT_NEAR(r.allocation[i].gb(), r.allocation[0].gb(), 1e-6);
  }
  EXPECT_NEAR(total_gb(r), 50.0, 1e-3);
}

TEST(Arbiter, UnevenDemandsGetMaxMinShares) {
  const Machine m = test_machine();
  Arbiter arbiter(m);
  // One small stream (2 GB/s) plus two large ones on a 50 GB/s link:
  // max-min gives the small stream its demand, the rest split evenly.
  std::vector<StreamSpec> streams{cpu_stream(m, 2.0, NumaId(0)),
                                  cpu_stream(m, 40.0, NumaId(0)),
                                  cpu_stream(m, 40.0, NumaId(0))};
  const ArbiterResult r = arbiter.solve(streams);
  EXPECT_NEAR(r.allocation[0].gb(), 2.0, 1e-3);
  EXPECT_NEAR(r.allocation[1].gb(), 24.0, 1e-3);
  EXPECT_NEAR(r.allocation[2].gb(), 24.0, 1e-3);
}

TEST(Arbiter, RemotePathBottlenecksOnRemotePort) {
  const Machine m = test_machine();
  Arbiter arbiter(m);
  std::vector<StreamSpec> streams;
  for (int i = 0; i < 8; ++i) streams.push_back(cpu_stream(m, 6.0, NumaId(1)));
  const ArbiterResult r = arbiter.solve(streams);
  // 48 demanded, remote port capacity is 25.
  EXPECT_NEAR(total_gb(r), 25.0, 1e-3);
}

TEST(Arbiter, DifferentNumaNodesDoNotContend) {
  // The key lesson of the paper: remote streams to *different* NUMA nodes
  // share only the wide inter-socket bus and keep their demand.
  ContentionSpec none;
  TopologyBuilder b;
  b.add_sockets(2, 8);
  b.add_numa_per_socket(2, Bandwidth::gb_per_s(50.0), none);
  b.set_remote_port_capacity(Bandwidth::gb_per_s(25.0), none);
  b.set_inter_socket_capacity(Bandwidth::gb_per_s(60.0), none);
  b.add_nic("nic", SocketId(0), Bandwidth::gb_per_s(10.0),
            Bandwidth::gb_per_s(12.0));
  const Machine m = b.build();
  Arbiter arbiter(m);
  std::vector<StreamSpec> streams;
  for (int i = 0; i < 6; ++i) streams.push_back(cpu_stream(m, 4.0, NumaId(2)));
  streams.push_back(dma_stream(m, 10.0, NumaId(3)));
  const ArbiterResult r = arbiter.solve(streams);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(r.allocation[i].gb(), 4.0, 1e-3);
  }
  EXPECT_NEAR(r.allocation.back().gb(), 10.0, 1e-3);
}

TEST(Arbiter, RequestorDegradationShrinksCapacity) {
  const Machine m = test_machine(/*knee=*/4.0, /*degradation=*/1.0);
  Arbiter arbiter(m);
  std::vector<StreamSpec> streams;
  for (int i = 0; i < 8; ++i) streams.push_back(cpu_stream(m, 10.0, NumaId(0)));
  const ArbiterResult r = arbiter.solve(streams);
  // 8 requestors, knee 4, slope 1: effective capacity 50 - 4 = 46.
  EXPECT_NEAR(total_gb(r), 46.0, 1e-3);
}

TEST(Arbiter, DmaWeightCountsTowardsDegradation) {
  const Machine m = test_machine(/*knee=*/4.0, /*degradation=*/1.0,
                                 /*dma_weight=*/3.0);
  Arbiter arbiter(m);
  std::vector<StreamSpec> streams;
  for (int i = 0; i < 8; ++i) streams.push_back(cpu_stream(m, 10.0, NumaId(0)));
  streams.push_back(dma_stream(m, 10.0, NumaId(0)));
  const ArbiterResult r = arbiter.solve(streams);
  // DMA is squeezed to its 5 GB/s floor (utilization 0.5), so weighted
  // requestors = 8 + 3 * 0.5 = 9.5 and capacity = 50 - 5.5 = 44.5.
  EXPECT_NEAR(r.allocation.back().gb(), 5.0, 0.05);
  EXPECT_NEAR(total_gb(r), 44.5, 0.1);
}

TEST(Arbiter, DeterministicAcrossCalls) {
  const Machine m = test_machine(6.0, 0.7, 2.5);
  Arbiter arbiter(m);
  std::vector<StreamSpec> streams;
  for (int i = 0; i < 7; ++i) streams.push_back(cpu_stream(m, 5.5, NumaId(1)));
  streams.push_back(dma_stream(m, 9.0, NumaId(1)));
  const ArbiterResult a = arbiter.solve(streams);
  const ArbiterResult b = arbiter.solve(streams);
  for (std::size_t i = 0; i < streams.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.allocation[i].gb(), b.allocation[i].gb());
  }
}

TEST(Arbiter, AddingCpuLoadNeverHelpsDma) {
  const Machine m = test_machine();
  Arbiter arbiter(m);
  double previous_dma = 1e9;
  for (int cores = 0; cores <= 12; ++cores) {
    std::vector<StreamSpec> streams;
    for (int i = 0; i < cores; ++i) {
      streams.push_back(cpu_stream(m, 6.0, NumaId(0)));
    }
    streams.push_back(dma_stream(m, 10.0, NumaId(0)));
    const ArbiterResult r = arbiter.solve(streams);
    const double dma = r.allocation.back().gb();
    EXPECT_LE(dma, previous_dma + 1e-6) << "cores=" << cores;
    previous_dma = dma;
  }
}

TEST(Arbiter, ZeroDemandStreamsGetZero) {
  const Machine m = test_machine();
  Arbiter arbiter(m);
  std::vector<StreamSpec> streams{cpu_stream(m, 0.0, NumaId(0)),
                                  cpu_stream(m, 5.0, NumaId(0))};
  const ArbiterResult r = arbiter.solve(streams);
  EXPECT_DOUBLE_EQ(r.allocation[0].gb(), 0.0);
  EXPECT_NEAR(r.allocation[1].gb(), 5.0, 1e-6);
}

TEST(Arbiter, EmptyInputIsFine) {
  const Machine m = test_machine();
  Arbiter arbiter(m);
  const ArbiterResult r = arbiter.solve({});
  EXPECT_TRUE(r.allocation.empty());
}

TEST(Arbiter, PcieLimitsDmaBeforeController) {
  // NIC with 10 GB/s wire but only a 6 GB/s PCIe link.
  ContentionSpec none;
  TopologyBuilder b;
  b.add_sockets(1, 4);
  b.add_numa_per_socket(1, Bandwidth::gb_per_s(50.0), none);
  b.add_nic("nic", SocketId(0), Bandwidth::gb_per_s(10.0),
            Bandwidth::gb_per_s(6.0));
  const Machine m = b.build();
  Arbiter arbiter(m);
  const std::vector<StreamSpec> streams{dma_stream(m, 10.0, NumaId(0))};
  const ArbiterResult r = arbiter.solve(streams);
  EXPECT_NEAR(r.allocation[0].gb(), 6.0, 1e-3);
}

}  // namespace
}  // namespace mcm::sim
