// The incremental water-filling contract: arbiter epochs (add/remove +
// dirty-link resolve), the engine's incremental mode and the steady-state
// cache must all be bit-identical to the one-shot reference paths — not
// merely close. Every comparison here is on the exact bits.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <optional>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/observer.hpp"
#include "sim/engine.hpp"
#include "sim/machine.hpp"
#include "topo/builder.hpp"
#include "topo/platforms.hpp"
#include "util/rng.hpp"

namespace mcm::sim {
namespace {

using topo::ContentionSpec;
using topo::Machine;
using topo::NicId;
using topo::NumaId;
using topo::SocketId;
using topo::TopologyBuilder;

[[nodiscard]] std::uint64_t bits(double value) {
  return std::bit_cast<std::uint64_t>(value);
}

/// Random machine in the same family as the arbiter property tests.
[[nodiscard]] Machine make_machine(Rng& rng) {
  const auto random_spec = [&] {
    ContentionSpec spec;
    spec.dma_floor = Bandwidth::gb_per_s(rng.uniform(0.0, 6.0));
    spec.requestor_knee = rng.uniform(2.0, 40.0);
    spec.degradation_per_requestor =
        Bandwidth::gb_per_s(rng.uniform(0.0, 1.5));
    spec.dma_requestor_weight = rng.uniform(0.5, 4.0);
    spec.dma_soft_start = rng.uniform(0.4, 1.0);
    spec.dma_soft_min = rng.uniform(0.3, 1.0);
    return spec;
  };
  TopologyBuilder b;
  b.add_sockets(2, 4 + rng.uniform_below(12));
  b.add_numa_per_socket(1 + rng.uniform_below(2),
                        Bandwidth::gb_per_s(rng.uniform(30.0, 120.0)),
                        random_spec());
  b.set_remote_port_capacity(Bandwidth::gb_per_s(rng.uniform(15.0, 60.0)),
                             random_spec());
  b.set_inter_socket_capacity(Bandwidth::gb_per_s(rng.uniform(30.0, 90.0)),
                              random_spec());
  b.add_nic("nic", SocketId(rng.uniform_below(2)),
            Bandwidth::gb_per_s(rng.uniform(5.0, 25.0)),
            Bandwidth::gb_per_s(rng.uniform(8.0, 30.0)));
  return b.build();
}

[[nodiscard]] StreamSpec make_stream(Rng& rng, const Machine& machine) {
  StreamSpec stream;
  const std::size_t numa_count = machine.numa_count();
  const NumaId target(
      static_cast<std::uint32_t>(rng.uniform_below(numa_count)));
  if (rng.uniform_below(4) == 0) {
    stream.cls = StreamClass::kDma;
    stream.demand = Bandwidth::gb_per_s(rng.uniform(0.5, 25.0));
    stream.path = machine.dma_path(NicId(0), target);
    stream.source_socket = machine.nic(NicId(0)).socket;
  } else {
    stream.cls = StreamClass::kCpu;
    stream.demand = Bandwidth::gb_per_s(rng.uniform(0.1, 8.0));
    const SocketId source(static_cast<std::uint32_t>(rng.uniform_below(2)));
    stream.path = machine.cpu_path(source, target);
    stream.source_socket = source;
  }
  return stream;
}

// ---------------------------------------------------------------------
// Arbiter: epoch churn vs one-shot solve
// ---------------------------------------------------------------------

class IncrementalChurn : public testing::TestWithParam<std::uint64_t> {};

TEST_P(IncrementalChurn, ResolveMatchesSolveBitwiseUnderRandomChurn) {
  Rng rng(GetParam());
  const Machine machine = make_machine(rng);
  for (const ArbitrationPolicy policy :
       {ArbitrationPolicy::kCpuPriorityWithFloor,
        ArbitrationPolicy::kFairShare}) {
    Arbiter arbiter(machine, policy);
    arbiter.prepare({});

    struct Live {
      std::size_t slot;
      StreamSpec spec;
    };
    std::vector<Live> live;  // insertion order, like the engine's set
    std::vector<std::uint32_t> dirty;
    std::vector<std::uint8_t> is_dirty(machine.links().size(), 0);
    const auto mark = [&](const StreamSpec& spec) {
      for (topo::LinkId l : spec.path) {
        if (is_dirty[l.value()] == 0) {
          is_dirty[l.value()] = 1;
          dirty.push_back(l.value());
        }
      }
    };

    for (int step = 0; step < 120; ++step) {
      if (live.empty() || rng.uniform_below(5) < 3) {
        StreamSpec spec = make_stream(rng, machine);
        mark(spec);
        const std::size_t slot = arbiter.add_stream(spec);
        live.push_back(Live{slot, std::move(spec)});
      } else {
        const std::size_t victim = rng.uniform_below(live.size());
        mark(live[victim].spec);
        arbiter.remove_stream(live[victim].slot);
        live.erase(live.begin() +
                   static_cast<std::ptrdiff_t>(victim));
      }
      if (rng.uniform_below(3) != 0) continue;

      // Resolve only the dirty links, then shadow with a one-shot solve
      // over the live specs in insertion order: every live allocation
      // must match on the exact bits.
      const ArbiterResult& incremental = arbiter.resolve(dirty);
      for (const std::uint32_t link : dirty) is_dirty[link] = 0;
      dirty.clear();
      std::vector<StreamSpec> specs;
      specs.reserve(live.size());
      for (const Live& l : live) specs.push_back(l.spec);
      const ArbiterResult full = arbiter.solve(specs);
      ASSERT_EQ(full.allocation.size(), live.size());
      for (std::size_t i = 0; i < live.size(); ++i) {
        ASSERT_EQ(bits(full.allocation[i].bps()),
                  bits(incremental.allocation[live[i].slot].bps()))
            << "stream " << i << " policy " << to_string(policy)
            << " step " << step;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalChurn,
                         testing::Range<std::uint64_t>(1, 13));

// ---------------------------------------------------------------------
// Engine: incremental mode vs full-solve mode, in lockstep
// ---------------------------------------------------------------------

class EngineLockstep : public testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineLockstep, IncrementalEngineMatchesFullSolveBitwise) {
  Rng rng(GetParam());
  SimMachine machine(topo::make_henri());
  Engine incremental(machine.machine(), machine.policy());
  Engine full(machine.machine(), machine.policy());
  incremental.set_solve_mode(Engine::SolveMode::kIncremental);
  full.set_solve_mode(Engine::SolveMode::kFull);

  const std::size_t cores = machine.max_computing_cores();
  const std::size_t numa = machine.machine().numa_count();
  std::vector<TransferId> issued;  // identical ids in both engines

  for (int step = 0; step < 160; ++step) {
    const std::size_t op = rng.uniform_below(8);
    if (op < 3) {
      const NumaId node(
          static_cast<std::uint32_t>(rng.uniform_below(numa)));
      const StreamSpec spec = machine.compute_stream(
          1 + rng.uniform_below(cores), node);
      const TransferId a = incremental.start_flow(spec);
      const TransferId b = full.start_flow(spec);
      ASSERT_EQ(a, b);
      issued.push_back(a);
    } else if (op < 5) {
      const NumaId node(
          static_cast<std::uint32_t>(rng.uniform_below(numa)));
      const StreamSpec spec = machine.dma_stream(node);
      const std::uint64_t bytes = (1 + rng.uniform_below(16)) * kMiB;
      const TransferId a = incremental.start_transfer(spec, bytes);
      const TransferId b = full.start_transfer(spec, bytes);
      ASSERT_EQ(a, b);
      issued.push_back(a);
    } else if (op == 5 && !issued.empty()) {
      const TransferId id = issued[rng.uniform_below(issued.size())];
      ASSERT_EQ(incremental.stop(id), full.stop(id));
    } else {
      const Seconds deadline =
          incremental.now() + Seconds(rng.uniform(1e-5, 2e-3));
      const std::vector<Completion> a = incremental.run_until(deadline);
      const std::vector<Completion> b = full.run_until(deadline);
      ASSERT_EQ(a.size(), b.size());
      for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].id, b[i].id);
        ASSERT_EQ(bits(a[i].time.value()), bits(b[i].time.value()));
      }
      ASSERT_EQ(bits(incremental.now().value()),
                bits(full.now().value()));
    }
    // Every issued transfer agrees on liveness, rate and byte count at
    // every step — the rates on the exact bits.
    for (const TransferId id : issued) {
      ASSERT_EQ(incremental.is_active(id), full.is_active(id));
      ASSERT_EQ(bits(incremental.current_rate(id).bps()),
                bits(full.current_rate(id).bps()));
      ASSERT_EQ(incremental.bytes_moved(id), full.bytes_moved(id));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineLockstep,
                         testing::Range<std::uint64_t>(1, 9));

// ---------------------------------------------------------------------
// Regressions: empty active set and single-link fast paths
// ---------------------------------------------------------------------

TEST(IncrementalRegression, EmptyActiveSetAdvancesWithoutSolving) {
  obs::MetricsRegistry metrics;
  obs::Observer observer;
  observer.metrics = &metrics;
  SimMachine machine(topo::make_henri());
  Engine engine(machine.machine(), machine.policy());
  engine.attach_observer(observer);

  // Nothing active: the refresh must not reach the arbiter at all.
  EXPECT_TRUE(engine.run_until(Seconds(0.01)).empty());
  auto snapshot = metrics.snapshot();
  EXPECT_EQ(snapshot.counters["sim.arbiter.incremental_solves"], 0u);
  EXPECT_EQ(snapshot.counters["sim.arbiter.full_solves"], 0u);

  // Start-then-stop back to the empty set: still no solve needed, and
  // time keeps advancing cleanly.
  const TransferId flow =
      engine.start_flow(machine.compute_stream(1, NumaId(0)));
  EXPECT_EQ(engine.stop(flow), StopResult::kStopped);
  EXPECT_TRUE(engine.run_until(Seconds(0.02)).empty());
  snapshot = metrics.snapshot();
  EXPECT_EQ(snapshot.counters["sim.arbiter.incremental_solves"], 0u);
  EXPECT_EQ(bits(engine.now().value()), bits(0.02));
}

TEST(IncrementalRegression, SingleLinkStreamResolvesLikeSolve) {
  Rng rng(7);
  const Machine machine = make_machine(rng);
  // A purely local CPU stream: the shortest path the topology produces.
  StreamSpec local;
  local.cls = StreamClass::kCpu;
  local.demand = Bandwidth::gb_per_s(200.0);  // far above any capacity
  local.path = machine.cpu_path(SocketId(0), NumaId(0));
  local.source_socket = SocketId(0);

  Arbiter arbiter(machine);
  arbiter.prepare({});
  const std::size_t slot = arbiter.add_stream(local);
  std::vector<std::uint32_t> dirty;
  for (topo::LinkId l : local.path) dirty.push_back(l.value());
  const ArbiterResult& incremental = arbiter.resolve(dirty);
  const ArbiterResult full = arbiter.solve({&local, 1});
  ASSERT_EQ(full.allocation.size(), 1u);
  EXPECT_EQ(bits(full.allocation[0].bps()),
            bits(incremental.allocation[slot].bps()));
  // Saturated single stream: it gets the link's effective capacity.
  EXPECT_GT(incremental.allocation[slot].gb(), 0.0);
}

// ---------------------------------------------------------------------
// Solve cache: hits counted, rates unchanged
// ---------------------------------------------------------------------

TEST(SolveCache, RepeatedStreamSetsHitTheCacheWithIdenticalRates) {
  obs::MetricsRegistry metrics;
  obs::Observer observer;
  observer.metrics = &metrics;
  SimMachine machine(topo::make_henri());
  Engine engine(machine.machine(), machine.policy());
  engine.attach_observer(observer);

  const TransferId flow =
      engine.start_flow(machine.compute_stream(4, NumaId(0)));
  const StreamSpec message = machine.dma_stream(NumaId(0));

  // Back-to-back identical messages: after the first solve, every restart
  // re-creates the exact same stream set, which must come from the cache.
  TransferId id = engine.start_transfer(message, 4 * kMiB);
  const double first_rate = engine.current_rate(id).bps();
  for (int i = 0; i < 8; ++i) {
    const std::optional<Completion> done =
        engine.run_until_next_completion(Seconds(1.0));
    ASSERT_TRUE(done.has_value());
    ASSERT_EQ(done->id, id);
    id = engine.start_transfer(message, 4 * kMiB);
    EXPECT_EQ(bits(engine.current_rate(id).bps()), bits(first_rate));
  }
  auto snapshot = metrics.snapshot();
  EXPECT_GE(snapshot.counters["sim.engine.solves_avoided"], 8u);
  EXPECT_GT(engine.bytes_moved(flow), 0u);
}

// ---------------------------------------------------------------------
// Steady-state cache: memoized phases are the stored bits
// ---------------------------------------------------------------------

TEST(SteadyCache, RepeatMeasurementsHitAndReturnIdenticalBits) {
  SimMachine machine(topo::make_henri());
  ASSERT_NE(machine.steady_cache(), nullptr);
  const ParallelMeasurement first =
      machine.measure_parallel(4, NumaId(0), NumaId(0));
  const SteadyStateCache::Stats cold = machine.steady_cache()->stats();
  EXPECT_GT(cold.misses, 0u);

  const ParallelMeasurement again =
      machine.measure_parallel(4, NumaId(0), NumaId(0));
  const SteadyStateCache::Stats warm = machine.steady_cache()->stats();
  EXPECT_GT(warm.hits, cold.hits);
  EXPECT_EQ(bits(first.compute.bps()), bits(again.compute.bps()));
  EXPECT_EQ(bits(first.comm.bps()), bits(again.comm.bps()));
}

TEST(SteadyCache, SharedCacheServesSiblingMachinesBitwise) {
  auto cache = std::make_shared<SteadyStateCache>();
  SimMachine a(topo::make_henri());
  SimMachine b(topo::make_henri());
  a.set_steady_cache(cache);
  b.set_steady_cache(cache);

  const ParallelMeasurement from_a =
      a.measure_parallel(6, NumaId(0), NumaId(1));
  const SteadyStateCache::Stats after_a = cache->stats();
  const ParallelMeasurement from_b =
      b.measure_parallel(6, NumaId(0), NumaId(1));
  const SteadyStateCache::Stats after_b = cache->stats();

  EXPECT_GT(after_b.hits, after_a.hits);
  EXPECT_EQ(bits(from_a.compute.bps()), bits(from_b.compute.bps()));
  EXPECT_EQ(bits(from_a.comm.bps()), bits(from_b.comm.bps()));
}

TEST(SteadyCache, DifferentRunIndicesShareTheJitterFreePhase) {
  // Jitter is applied outside the cached phase: two run indices must
  // reuse one phase entry yet report different (jittered) measurements.
  SimMachine machine(topo::make_henri());
  machine.set_run_index(0);
  const Bandwidth run0 = machine.measure_compute_alone(4, NumaId(0));
  const SteadyStateCache::Stats cold = machine.steady_cache()->stats();
  machine.set_run_index(1);
  const Bandwidth run1 = machine.measure_compute_alone(4, NumaId(0));
  const SteadyStateCache::Stats warm = machine.steady_cache()->stats();
  EXPECT_GT(warm.hits, cold.hits);
  EXPECT_EQ(warm.entries, cold.entries);
  EXPECT_NE(bits(run0.bps()), bits(run1.bps()));
}

TEST(SteadyCache, NullCacheDisablesMemoizationButNotCorrectness) {
  SimMachine cached(topo::make_henri());
  SimMachine uncached(topo::make_henri());
  uncached.set_steady_cache(nullptr);
  ASSERT_EQ(uncached.steady_cache(), nullptr);
  const ParallelMeasurement a =
      cached.measure_parallel(3, NumaId(0), NumaId(0));
  const ParallelMeasurement b =
      uncached.measure_parallel(3, NumaId(0), NumaId(0));
  EXPECT_EQ(bits(a.compute.bps()), bits(b.compute.bps()));
  EXPECT_EQ(bits(a.comm.bps()), bits(b.comm.bps()));
}

}  // namespace
}  // namespace mcm::sim
