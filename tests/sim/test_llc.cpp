// Tests for the LLC-aware cached-kernel extension (paper §VI future work:
// "take into account the last level cache").
#include <gtest/gtest.h>

#include "sim/machine.hpp"
#include "topo/platforms.hpp"
#include "util/contracts.hpp"

namespace mcm::sim {
namespace {

using topo::NumaId;

TEST(Llc, NonTemporalKernelsBypassTheCache) {
  SimMachine m(topo::make_henri());
  EXPECT_DOUBLE_EQ(m.llc_hit_fraction(1), 0.0);
  m.set_compute_kernel(ComputeKernel::kCopy);
  EXPECT_DOUBLE_EQ(m.llc_hit_fraction(1), 0.0);
}

TEST(Llc, HitFractionFollowsFootprint) {
  SimMachine m(topo::make_henri());  // 25 MiB LLC
  m.set_compute_kernel(ComputeKernel::kCachedFill);
  m.set_working_set_bytes(5 * kMiB);
  // 1 core: 5 MiB footprint fully cached (capped at 0.95).
  EXPECT_DOUBLE_EQ(m.llc_hit_fraction(1), 0.95);
  // 10 cores: 50 MiB footprint, cache covers half.
  EXPECT_NEAR(m.llc_hit_fraction(10), 0.5, 1e-9);
  // 17 cores: 85 MiB footprint.
  EXPECT_NEAR(m.llc_hit_fraction(17), 25.0 / 85.0, 1e-9);
}

TEST(Llc, CachedKernelReducesMemoryTraffic) {
  SimMachine nt(topo::make_henri());
  SimMachine cached(topo::make_henri());
  cached.set_compute_kernel(ComputeKernel::kCachedFill);
  cached.set_working_set_bytes(8 * kMiB);
  for (std::size_t n : {1u, 4u, 12u}) {
    EXPECT_LT(cached.steady_compute_alone(n, NumaId(0)).gb(),
              nt.steady_compute_alone(n, NumaId(0)).gb())
        << "n=" << n;
  }
}

TEST(Llc, CachedKernelSoftensContention) {
  // With a cache-resident working set the memory system barely sees the
  // computation, so the network keeps (almost) its nominal bandwidth even
  // at full core count.
  SimMachine nt(topo::make_henri());
  SimMachine cached(topo::make_henri());
  cached.set_compute_kernel(ComputeKernel::kCachedFill);
  cached.set_working_set_bytes(kMiB);
  const std::size_t n = nt.max_computing_cores();
  const double comm_nt = nt.steady_parallel(n, NumaId(0), NumaId(0)).comm.gb();
  const double comm_cached =
      cached.steady_parallel(n, NumaId(0), NumaId(0)).comm.gb();
  EXPECT_GT(comm_cached, comm_nt + 3.0);
}

TEST(Llc, LargeWorkingSetsConvergeToUncachedBehaviour) {
  SimMachine nt(topo::make_henri());
  SimMachine cached(topo::make_henri());
  cached.set_compute_kernel(ComputeKernel::kCachedFill);
  cached.set_working_set_bytes(kGiB);  // 17 GiB aggregate >> 25 MiB LLC
  const std::size_t n = 12;
  EXPECT_NEAR(cached.steady_compute_alone(n, NumaId(0)).gb(),
              nt.steady_compute_alone(n, NumaId(0)).gb(),
              nt.steady_compute_alone(n, NumaId(0)).gb() * 0.03);
}

TEST(Llc, MachinesWithoutLlcSpecSeeNoEffect) {
  topo::PlatformSpec spec = topo::make_henri();
  spec.compute.llc_bytes = 0;
  SimMachine m(spec);
  m.set_compute_kernel(ComputeKernel::kCachedFill);
  EXPECT_DOUBLE_EQ(m.llc_hit_fraction(4), 0.0);
}

TEST(Llc, WorkingSetValidation) {
  SimMachine m(topo::make_henri());
  EXPECT_EQ(m.working_set_bytes(), 64ull * kMiB);
  EXPECT_THROW(m.set_working_set_bytes(0), ContractViolation);
}

TEST(Llc, KernelNameIncludesCachedFill) {
  EXPECT_STREQ(to_string(ComputeKernel::kCachedFill), "cached-fill");
}

TEST(Llc, PlatformPresetsCarryLlcSizes) {
  EXPECT_EQ(topo::make_henri().compute.llc_bytes, 25ull * kMiB);
  EXPECT_EQ(topo::make_diablo().compute.llc_bytes, 128ull * kMiB);
}

}  // namespace
}  // namespace mcm::sim
