#include "sim/machine.hpp"

#include <gtest/gtest.h>

#include "topo/platforms.hpp"
#include "util/contracts.hpp"

namespace mcm::sim {
namespace {

using topo::NumaId;

TEST(SimMachine, MaxComputingCoresLeavesOneForComm) {
  SimMachine henri(topo::make_henri());
  EXPECT_EQ(henri.max_computing_cores(), 17u);
  SimMachine occigen(topo::make_occigen());
  EXPECT_EQ(occigen.max_computing_cores(), 13u);
}

TEST(SimMachine, SingleCoreGetsItsNominalBandwidth) {
  SimMachine m(topo::make_henri());
  const Bandwidth bw = m.steady_compute_alone(1, NumaId(0));
  EXPECT_NEAR(bw.gb(), 5.5, 1e-6);
}

TEST(SimMachine, ComputeAloneScalesThenSaturates) {
  SimMachine m(topo::make_henri());
  // Perfect scaling region.
  EXPECT_NEAR(m.steady_compute_alone(4, NumaId(0)).gb(), 22.0, 1e-3);
  EXPECT_NEAR(m.steady_compute_alone(10, NumaId(0)).gb(), 55.0, 1e-3);
  // Saturated region: well below perfect scaling.
  const double at_17 = m.steady_compute_alone(17, NumaId(0)).gb();
  EXPECT_LT(at_17, 17 * 5.5 - 3.0);
  EXPECT_GT(at_17, 70.0);
}

TEST(SimMachine, RemoteComputeIsSlowerThanLocal) {
  SimMachine m(topo::make_henri());
  for (std::size_t n : {1u, 8u, 17u}) {
    EXPECT_LT(m.steady_compute_alone(n, NumaId(1)).gb(),
              m.steady_compute_alone(n, NumaId(0)).gb() + 1e-9)
        << "n=" << n;
  }
}

TEST(SimMachine, CommAloneMatchesNicNominal) {
  SimMachine m(topo::make_henri());
  EXPECT_NEAR(m.steady_comm_alone(NumaId(0)).gb(), 12.2, 1e-3);
  EXPECT_NEAR(m.steady_comm_alone(NumaId(1)).gb(), 12.2 * 0.93, 1e-3);
}

TEST(SimMachine, ParallelContentionSqueezesCommToFloor) {
  SimMachine m(topo::make_henri());
  const ParallelMeasurement full =
      m.steady_parallel(17, NumaId(0), NumaId(0));
  // henri's controller guarantees 4 GB/s to DMA.
  EXPECT_NEAR(full.comm.gb(), 4.0, 0.1);
  // Compute is also reduced relative to running alone.
  EXPECT_LT(full.compute.gb(), m.steady_compute_alone(17, NumaId(0)).gb());
}

TEST(SimMachine, FewCoresLeaveCommAtNominal) {
  SimMachine m(topo::make_henri());
  const ParallelMeasurement light =
      m.steady_parallel(2, NumaId(0), NumaId(0));
  EXPECT_NEAR(light.comm.gb(), 12.2, 0.05);
  EXPECT_NEAR(light.compute.gb(), 11.0, 0.05);
}

TEST(SimMachine, DifferentNumaPlacementsLeaveComputeUntouched) {
  SimMachine m(topo::make_henri_subnuma());
  // Compute on node 0, communications on node 1: different controllers, so
  // computations keep their solo bandwidth at any core count (the paper's
  // "computations are almost not impacted in other cases").
  for (std::size_t n : {2u, 9u, 17u}) {
    const ParallelMeasurement apart =
        m.steady_parallel(n, NumaId(0), NumaId(1));
    EXPECT_NEAR(apart.compute.gb(), m.steady_compute_alone(n, NumaId(0)).gb(),
                0.5)
        << "n=" << n;
  }
  // With few cores the network is untouched too...
  const ParallelMeasurement light = m.steady_parallel(2, NumaId(0), NumaId(1));
  EXPECT_NEAR(light.comm.gb(), m.steady_comm_alone(NumaId(1)).gb(), 0.2);
  // ...but a fully loaded socket steals fabric bandwidth from the NIC's
  // PCIe ingress regardless of placement (host-socket coupling), as the
  // paper's machines show for communications.
  const ParallelMeasurement heavy =
      m.steady_parallel(17, NumaId(0), NumaId(1));
  EXPECT_LT(heavy.comm.gb(), m.steady_comm_alone(NumaId(1)).gb() - 3.0);
}

TEST(SimMachine, SameRemoteNodeContendsHardestAcrossSockets) {
  SimMachine m(topo::make_henri_subnuma());
  // Mid-sweep, where the shared remote port is saturated but the host
  // fabric is not yet: contention shows only when both streams target the
  // same remote node. (At the very end of the sweep both placements sit on
  // their respective bandwidth floors.)
  const ParallelMeasurement same =
      m.steady_parallel(8, NumaId(2), NumaId(2));
  const ParallelMeasurement different =
      m.steady_parallel(8, NumaId(2), NumaId(3));
  EXPECT_LT(same.comm.gb(), different.comm.gb() - 1.0);
}

TEST(SimMachine, MeasurementsAreDeterministic) {
  SimMachine a(topo::make_pyxis());
  SimMachine b(topo::make_pyxis());
  EXPECT_DOUBLE_EQ(a.measure_compute_alone(9, NumaId(0)).gb(),
                   b.measure_compute_alone(9, NumaId(0)).gb());
  EXPECT_DOUBLE_EQ(a.measure_comm_alone(NumaId(1)).gb(),
                   b.measure_comm_alone(NumaId(1)).gb());
  const ParallelMeasurement pa = a.measure_parallel(9, NumaId(0), NumaId(1));
  const ParallelMeasurement pb = b.measure_parallel(9, NumaId(0), NumaId(1));
  EXPECT_DOUBLE_EQ(pa.compute.gb(), pb.compute.gb());
  EXPECT_DOUBLE_EQ(pa.comm.gb(), pb.comm.gb());
}

TEST(SimMachine, MeasuredTracksSteadyWithinNoise) {
  SimMachine m(topo::make_henri());
  for (std::size_t n : {1u, 6u, 12u, 17u}) {
    const double steady = m.steady_compute_alone(n, NumaId(0)).gb();
    const double measured = m.measure_compute_alone(n, NumaId(0)).gb();
    EXPECT_NEAR(measured, steady, steady * 0.02) << "n=" << n;
  }
}

TEST(SimMachine, PyxisCrossNumaPenaltyHitsOnlyMixedPlacements) {
  SimMachine m(topo::make_pyxis());
  const double penalty = m.spec().noise.cross_numa_dma_penalty;
  ASSERT_GT(penalty, 0.0);
  const ParallelMeasurement mixed = m.measure_parallel(4, NumaId(0), NumaId(1));
  const ParallelMeasurement steady = m.steady_parallel(4, NumaId(0), NumaId(1));
  // Mixed placement: measured comm is depressed by roughly the penalty.
  EXPECT_LT(mixed.comm.gb(), steady.comm.gb() * (1.0 - penalty * 0.5));
  const ParallelMeasurement diag = m.measure_parallel(4, NumaId(1), NumaId(1));
  const ParallelMeasurement diag_steady =
      m.steady_parallel(4, NumaId(1), NumaId(1));
  EXPECT_NEAR(diag.comm.gb(), diag_steady.comm.gb(),
              diag_steady.comm.gb() * 0.15);
}

TEST(SimMachine, DiabloNicLocalitySplit) {
  SimMachine m(topo::make_diablo());
  EXPECT_NEAR(m.steady_comm_alone(NumaId(1)).gb(), 22.4, 0.1);
  EXPECT_NEAR(m.steady_comm_alone(NumaId(0)).gb(), 12.1, 0.2);
}

TEST(SimMachine, OccigenCommKeepsNominalUnderContention) {
  SimMachine m(topo::make_occigen());
  const ParallelMeasurement remote =
      m.steady_parallel(13, NumaId(1), NumaId(1));
  const double nominal = m.steady_comm_alone(NumaId(1)).gb();
  EXPECT_GT(remote.comm.gb(), nominal * 0.93);
  // And computations take the hit.
  EXPECT_LT(remote.compute.gb(),
            m.steady_compute_alone(13, NumaId(1)).gb() - 3.0);
}

TEST(SimMachine, MessageSizeIsConfigurable) {
  SimMachine m(topo::make_henri());
  EXPECT_EQ(m.message_bytes(), 64ull * kMiB);
  m.set_message_bytes(4 * kMiB);
  EXPECT_EQ(m.message_bytes(), 4ull * kMiB);
  EXPECT_THROW(m.set_message_bytes(0), ContractViolation);
}

TEST(SimMachine, RejectsOutOfRangeCoreCounts) {
  SimMachine m(topo::make_henri());
  EXPECT_THROW((void)m.steady_compute_alone(0, NumaId(0)),
               ContractViolation);
  EXPECT_THROW((void)m.steady_compute_alone(18, NumaId(0)),
               ContractViolation);
}

}  // namespace
}  // namespace mcm::sim
