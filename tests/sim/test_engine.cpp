#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include "topo/builder.hpp"
#include "util/contracts.hpp"

namespace mcm::sim {
namespace {

using topo::ContentionSpec;
using topo::Machine;
using topo::NicId;
using topo::NumaId;
using topo::SocketId;
using topo::TopologyBuilder;

/// Single socket, one 10 GB/s-controller NUMA node, one 4 GB/s NIC.
Machine tiny_machine() {
  ContentionSpec none;
  TopologyBuilder b;
  b.add_sockets(1, 4);
  b.add_numa_per_socket(1, Bandwidth::gb_per_s(10.0), none);
  b.add_nic("nic", SocketId(0), Bandwidth::gb_per_s(4.0),
            Bandwidth::gb_per_s(5.0));
  return b.build();
}

StreamSpec cpu(const Machine& m, double gb) {
  return StreamSpec{StreamClass::kCpu, Bandwidth::gb_per_s(gb),
                    m.cpu_path(SocketId(0), NumaId(0))};
}

StreamSpec dma(const Machine& m, double gb) {
  return StreamSpec{StreamClass::kDma, Bandwidth::gb_per_s(gb),
                    m.dma_path(NicId(0), NumaId(0))};
}

TEST(Engine, SingleTransferCompletesAtExpectedTime) {
  const Machine m = tiny_machine();
  Engine engine(m);
  // 2 GB at 4 GB/s -> 0.5 s.
  const TransferId id = engine.start_transfer(dma(m, 4.0), 2'000'000'000ull);
  const auto completions = engine.run_until(Seconds(1.0));
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_EQ(completions[0].id, id);
  EXPECT_NEAR(completions[0].time.value(), 0.5, 1e-9);
  EXPECT_FALSE(engine.is_active(id));
  EXPECT_EQ(engine.bytes_moved(id), 2'000'000'000ull);
}

TEST(Engine, FlowMovesBytesProportionallyToTime) {
  const Machine m = tiny_machine();
  Engine engine(m);
  const TransferId id = engine.start_flow(cpu(m, 3.0));
  const auto completions = engine.run_until(Seconds(2.0));
  EXPECT_TRUE(completions.empty());
  EXPECT_TRUE(engine.is_active(id));
  EXPECT_NEAR(static_cast<double>(engine.bytes_moved(id)), 6e9, 1e3);
}

TEST(Engine, TransferSlowsDownWhenContended) {
  const Machine m = tiny_machine();
  Engine engine(m);
  // Two CPU flows of 4 GB/s each plus a 4 GB/s DMA transfer on a 10 GB/s
  // controller: CPU priority leaves 2 GB/s for DMA (no floor configured).
  engine.start_flow(cpu(m, 4.0));
  engine.start_flow(cpu(m, 4.0));
  const TransferId msg = engine.start_transfer(dma(m, 4.0), 1'000'000'000ull);
  EXPECT_NEAR(engine.current_rate(msg).gb(), 2.0, 1e-6);
  const auto completions = engine.run_until(Seconds(1.0));
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_NEAR(completions[0].time.value(), 0.5, 1e-6);
}

TEST(Engine, RatesRecoverWhenFlowStops) {
  const Machine m = tiny_machine();
  Engine engine(m);
  const TransferId hog1 = engine.start_flow(cpu(m, 4.0));
  const TransferId hog2 = engine.start_flow(cpu(m, 4.0));
  const TransferId msg = engine.start_transfer(dma(m, 4.0), 4'000'000'000ull);
  // First run 0.5 s under contention: DMA moves 1 GB at 2 GB/s.
  (void)engine.run_until(Seconds(0.5));
  EXPECT_NEAR(static_cast<double>(engine.bytes_moved(msg)), 1e9, 1e6);
  EXPECT_EQ(engine.stop(hog1), StopResult::kStopped);
  EXPECT_EQ(engine.stop(hog2), StopResult::kStopped);
  // Unconstrained now: remaining 3 GB at 4 GB/s -> completes at 1.25 s.
  const auto completions = engine.run_until(Seconds(2.0));
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_NEAR(completions[0].time.value(), 1.25, 1e-6);
}

TEST(Engine, RunUntilNextCompletionStopsAtDeadline) {
  const Machine m = tiny_machine();
  Engine engine(m);
  engine.start_transfer(dma(m, 4.0), 8'000'000'000ull);  // needs 2 s
  const auto completion = engine.run_until_next_completion(Seconds(1.0));
  EXPECT_FALSE(completion.has_value());
  EXPECT_NEAR(engine.now().value(), 1.0, 1e-9);
}

TEST(Engine, RunUntilNextCompletionReturnsEarliest) {
  const Machine m = tiny_machine();
  Engine engine(m);
  const TransferId slow = engine.start_transfer(cpu(m, 2.0), 4'000'000'000ull);
  const TransferId fast = engine.start_transfer(dma(m, 4.0), 2'000'000'000ull);
  const auto first = engine.run_until_next_completion(Seconds(10.0));
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->id, fast);
  EXPECT_NEAR(first->time.value(), 0.5, 1e-9);
  const auto second = engine.run_until_next_completion(Seconds(10.0));
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->id, slow);
  EXPECT_NEAR(second->time.value(), 2.0, 1e-9);
}

TEST(Engine, BackToBackMessagesYieldSteadyBandwidth) {
  const Machine m = tiny_machine();
  Engine engine(m);
  const std::uint64_t msg_bytes = 400'000'000ull;  // 0.1 s each at 4 GB/s
  std::uint64_t received = 0;
  TransferId current = engine.start_transfer(dma(m, 4.0), msg_bytes);
  while (engine.now() < Seconds(1.0)) {
    const auto completion = engine.run_until_next_completion(Seconds(1.0));
    if (!completion) break;
    received += msg_bytes;
    current = engine.start_transfer(dma(m, 4.0), msg_bytes);
  }
  (void)current;
  EXPECT_EQ(received, 10u * msg_bytes);
}

TEST(Engine, StopReportsAlreadyCompleteOnCompleted) {
  const Machine m = tiny_machine();
  Engine engine(m);
  const TransferId id = engine.start_transfer(dma(m, 4.0), 1'000'000ull);
  (void)engine.run_until(Seconds(1.0));
  EXPECT_FALSE(engine.is_active(id));
  EXPECT_EQ(engine.stop(id), StopResult::kAlreadyComplete);
}

TEST(Engine, StopReportsAlreadyCompleteOnDoubleStop) {
  const Machine m = tiny_machine();
  Engine engine(m);
  const TransferId flow = engine.start_flow(cpu(m, 1.0));
  EXPECT_EQ(engine.stop(flow), StopResult::kStopped);
  EXPECT_EQ(engine.stop(flow), StopResult::kAlreadyComplete);
}

TEST(Engine, StopReportsUnknownId) {
  const Machine m = tiny_machine();
  Engine engine(m);
  EXPECT_EQ(engine.stop(42), StopResult::kUnknownId);
}

TEST(Engine, UnknownIdThrowsOnQueries) {
  const Machine m = tiny_machine();
  Engine engine(m);
  EXPECT_THROW((void)engine.bytes_moved(42), ContractViolation);
  EXPECT_THROW((void)engine.is_active(42), ContractViolation);
}

TEST(Engine, StopResultNamesAreStable) {
  EXPECT_STREQ(to_string(StopResult::kStopped), "stopped");
  EXPECT_STREQ(to_string(StopResult::kAlreadyComplete), "already-complete");
  EXPECT_STREQ(to_string(StopResult::kUnknownId), "unknown-id");
}

TEST(Engine, RejectsZeroByteTransferAndZeroDemand) {
  const Machine m = tiny_machine();
  Engine engine(m);
  EXPECT_THROW((void)engine.start_transfer(dma(m, 4.0), 0), ContractViolation);
  EXPECT_THROW((void)engine.start_flow(cpu(m, 0.0)), ContractViolation);
}

TEST(Engine, RunUntilRejectsPastDeadline) {
  const Machine m = tiny_machine();
  Engine engine(m);
  (void)engine.run_until(Seconds(1.0));
  EXPECT_THROW((void)engine.run_until(Seconds(0.5)), ContractViolation);
}

TEST(Engine, TraceRecordsLifecycle) {
  const Machine m = tiny_machine();
  Engine engine(m);
  engine.trace().enable();
  const TransferId flow = engine.start_flow(cpu(m, 1.0));
  engine.start_transfer(dma(m, 4.0), 400'000'000ull);
  (void)engine.run_until(Seconds(1.0));
  (void)engine.stop(flow);
  EXPECT_EQ(engine.trace().count(TraceEventKind::kTransferStarted), 2u);
  EXPECT_EQ(engine.trace().count(TraceEventKind::kTransferCompleted), 1u);
  EXPECT_EQ(engine.trace().count(TraceEventKind::kTransferStopped), 1u);
  EXPECT_GE(engine.trace().count(TraceEventKind::kRatesRecomputed), 1u);
}

TEST(Engine, TraceDisabledRecordsNothing) {
  const Machine m = tiny_machine();
  Engine engine(m);
  engine.start_flow(cpu(m, 1.0));
  (void)engine.run_until(Seconds(0.5));
  EXPECT_TRUE(engine.trace().events().empty());
}

TEST(Engine, SimultaneousCompletionsAllReported) {
  const Machine m = tiny_machine();
  Engine engine(m);
  // Two CPU transfers with equal demand and size complete together.
  engine.start_transfer(cpu(m, 2.0), 1'000'000'000ull);
  engine.start_transfer(cpu(m, 2.0), 1'000'000'000ull);
  const auto completions = engine.run_until(Seconds(2.0));
  ASSERT_EQ(completions.size(), 2u);
  EXPECT_NEAR(completions[0].time.value(), 0.5, 1e-9);
  EXPECT_NEAR(completions[1].time.value(), 0.5, 1e-9);
}

}  // namespace
}  // namespace mcm::sim
