// Tests for the paper's §VI future-work workload variants: bidirectional
// (ping-pong) communications and copy compute kernels.
#include <gtest/gtest.h>

#include "benchlib/backend.hpp"
#include "benchlib/runner.hpp"
#include "model/model.hpp"
#include "sim/machine.hpp"
#include "topo/platforms.hpp"

namespace mcm::sim {
namespace {

using topo::NumaId;

TEST(Workloads, DefaultsMatchThePaperSetup) {
  SimMachine m(topo::make_henri());
  EXPECT_EQ(m.comm_pattern(), CommPattern::kReceiveOnly);
  EXPECT_EQ(m.compute_kernel(), ComputeKernel::kFill);
}

TEST(Workloads, EnumNames) {
  EXPECT_STREQ(to_string(CommPattern::kReceiveOnly), "receive-only");
  EXPECT_STREQ(to_string(CommPattern::kBidirectional), "bidirectional");
  EXPECT_STREQ(to_string(ComputeKernel::kFill), "fill");
  EXPECT_STREQ(to_string(ComputeKernel::kCopy), "copy");
}

TEST(Workloads, CopyKernelRaisesPerCoreTraffic) {
  SimMachine m(topo::make_henri());
  const double fill = m.steady_compute_alone(1, NumaId(0)).gb();
  m.set_compute_kernel(ComputeKernel::kCopy);
  const double copy = m.steady_compute_alone(1, NumaId(0)).gb();
  EXPECT_NEAR(copy, fill * kernel_traffic_factor(ComputeKernel::kCopy),
              1e-6);
}

TEST(Workloads, CopyKernelSaturatesWithFewerCores) {
  SimMachine fill(topo::make_henri());
  SimMachine copy(topo::make_henri());
  copy.set_compute_kernel(ComputeKernel::kCopy);
  // Find the first core count where scaling stops being perfect.
  const auto knee = [](SimMachine& m) {
    const double per_core = m.steady_compute_alone(1, NumaId(0)).gb();
    for (std::size_t n = 2; n <= m.max_computing_cores(); ++n) {
      if (m.steady_compute_alone(n, NumaId(0)).gb() <
          static_cast<double>(n) * per_core - 0.1) {
        return n;
      }
    }
    return m.max_computing_cores() + 1;
  };
  EXPECT_LT(knee(copy), knee(fill));
}

TEST(Workloads, BidirectionalCommReducesReceiveBandwidthUnderLoad) {
  SimMachine pong(topo::make_henri());
  SimMachine pingpong(topo::make_henri());
  pingpong.set_comm_pattern(CommPattern::kBidirectional);
  // Near saturation the controller leftover must now be split between the
  // receive and send directions, and at full load the DMA floor is shared.
  const double rx_only =
      pong.steady_parallel(14, NumaId(0), NumaId(0)).comm.gb();
  const double rx_bidir =
      pingpong.steady_parallel(14, NumaId(0), NumaId(0)).comm.gb();
  EXPECT_LT(rx_bidir, rx_only - 0.5);
  const double rx_floor =
      pingpong.steady_parallel(17, NumaId(0), NumaId(0)).comm.gb();
  EXPECT_NEAR(rx_floor, 2.0, 0.3);  // half of henri's 4 GB/s floor
}

TEST(Workloads, BidirectionalIdleCommStillReachesNominal) {
  // PCIe and the wire are full duplex: without compute load, the receive
  // direction keeps its nominal bandwidth.
  SimMachine m(topo::make_henri());
  m.set_comm_pattern(CommPattern::kBidirectional);
  EXPECT_NEAR(m.steady_comm_alone(NumaId(0)).gb(), 12.2, 0.3);
}

TEST(Workloads, BidirectionalContentionStartsEarlier) {
  SimMachine pong(topo::make_henri());
  SimMachine pingpong(topo::make_henri());
  pingpong.set_comm_pattern(CommPattern::kBidirectional);
  const auto onset = [](SimMachine& m) {
    const double nominal = m.steady_comm_alone(NumaId(0)).gb();
    for (std::size_t n = 1; n <= m.max_computing_cores(); ++n) {
      if (m.steady_parallel(n, NumaId(0), NumaId(0)).comm.gb() <
          nominal * 0.9) {
        return n;
      }
    }
    return m.max_computing_cores() + 1;
  };
  EXPECT_LE(onset(pingpong), onset(pong));
}

TEST(Workloads, ModelStillCalibratesOnVariantWorkloads) {
  // The paper's conjecture: for other kernels/message patterns the model
  // form still applies, only the parameters change. Calibrate on each
  // variant's own sweep and check the sample-placement error stays small.
  for (const bool bidirectional : {false, true}) {
    for (const bool copy : {false, true}) {
      bench::SimBackend backend(topo::make_henri());
      if (bidirectional) {
        backend.machine().set_comm_pattern(CommPattern::kBidirectional);
      }
      if (copy) backend.machine().set_compute_kernel(ComputeKernel::kCopy);
      const auto model = model::ContentionModel::from_backend(backend);
      const bench::SweepResult sweep = bench::run_all_placements(backend);
      const model::ErrorReport report = model.evaluate_against(sweep);
      EXPECT_LT(report.comp_samples, 4.0)
          << "bidir=" << bidirectional << " copy=" << copy;
      EXPECT_LT(report.comm_samples, 10.0)
          << "bidir=" << bidirectional << " copy=" << copy;
    }
  }
}

TEST(Workloads, MeasuredBidirectionalTracksSteady) {
  SimMachine m(topo::make_occigen());
  m.set_comm_pattern(CommPattern::kBidirectional);
  const double steady =
      m.steady_parallel(8, NumaId(0), NumaId(0)).comm.gb();
  const double measured =
      m.measure_parallel(8, NumaId(0), NumaId(0)).comm.gb();
  EXPECT_NEAR(measured, steady, steady * 0.05);
}

}  // namespace
}  // namespace mcm::sim
