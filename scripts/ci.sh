#!/bin/sh
# CI pipeline, runnable locally: tier-1 build + tests, the sanitizer
# subset, the benchmark smoke suite, and the bench-diff regression gate
# against the checked-in baseline reports.
#
#   scripts/ci.sh            run everything
#   scripts/ci.sh tier1      build + full ctest only
#   scripts/ci.sh sanitize   ASan+UBSan build + `ctest -L sanitize`
#   scripts/ci.sh bench      MCM_BENCH_SMOKE=1 suite + baseline diffs
#   scripts/ci.sh pipeline   `mcmtool run-scenario` smoke spec: cold +
#                            cached runs, gated with bench-diff
#   scripts/ci.sh fault      fault-injection suite (`ctest -L fault`),
#                            cold build and under ASan+UBSan
#   scripts/ci.sh service    mcmd golden-request replay (byte-diffed),
#                            socket query vs local run, and the svc test
#                            suite under ASan+UBSan
#   scripts/ci.sh chaos      seeded socket/cache chaos harness: malformed-
#                            frame replay (byte-diffed, twice), the chaos
#                            test suite twice (determinism), and once
#                            more under ASan+UBSan
#   scripts/ci.sh batch      batched serving gate: a live batch of N
#                            compatible predicts byte-diffed against N
#                            serial queries (one calibration), the same
#                            batch over the shm transport byte-diffed
#                            against the socket reply, the golden batch
#                            replay twice + over --shm, the three
#                            service-path bugfix regressions, and the
#                            svc suite under ASan+UBSan
#   scripts/ci.sh perf       engine hot-path gate: bench_engine_hotpath
#                            smoke (bench-diffed against its baseline,
#                            solves-avoided counters in the report), plus
#                            the incremental-equivalence sim suite under
#                            ASan+UBSan with the incremental-vs-full
#                            cross-check enabled
#   scripts/ci.sh obs        observability round trip: traced socket query
#                            (client + server Chrome traces sharing one
#                            trace id), deterministic trace-merge, JSONL
#                            log schema, stats latency quantiles, and the
#                            obs test suite under ASan+UBSan
set -eu

ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
JOBS=$(nproc 2>/dev/null || echo 4)
STAGE=${1:-all}

tier1() {
  echo "== tier1: build + ctest =="
  cmake -B "$ROOT/build" -S "$ROOT"
  cmake --build "$ROOT/build" -j "$JOBS"
  (cd "$ROOT/build" && ctest --output-on-failure -j "$JOBS")
}

sanitize() {
  echo "== sanitize: ASan+UBSan subset =="
  cmake --preset sanitize -S "$ROOT"
  cmake --build "$ROOT/build-sanitize" -j "$JOBS"
  (cd "$ROOT/build-sanitize" && ctest -L sanitize --output-on-failure \
      -j "$JOBS")
}

bench_smoke() {
  echo "== bench: smoke suite + regression gate =="
  # Reuse the tier-1 build; make sure the bench binaries exist.
  cmake -B "$ROOT/build" -S "$ROOT" >/dev/null
  cmake --build "$ROOT/build" -j "$JOBS"
  WORK="$ROOT/build/bench-smoke"
  mkdir -p "$WORK"
  cd "$WORK"
  for bin in "$ROOT"/build/bench/bench_*; do
    [ -x "$bin" ] || continue
    name=$(basename "$bin")
    echo "-- $name (smoke)"
    MCM_BENCH_SMOKE=1 "$bin" >"$name.log" 2>&1 || {
      cat "$name.log"
      echo "FAIL: $name"
      exit 1
    }
  done
  # Gate every report that has a checked-in baseline; complain about
  # baselines whose benchmark vanished.
  status=0
  for baseline in "$ROOT"/bench/baselines/BENCH_*.json; do
    [ -e "$baseline" ] || {
      echo "note: no baselines in bench/baselines; skipping diff gate"
      break
    }
    report=$(basename "$baseline")
    if [ ! -f "$WORK/$report" ]; then
      echo "FAIL: baseline $report has no candidate report"
      status=1
      continue
    fi
    echo "-- bench-diff $report"
    "$ROOT"/build/tools/mcmtool bench-diff "$baseline" "$WORK/$report" \
      || status=1
  done
  return $status
}

pipeline_smoke() {
  echo "== pipeline: run-scenario smoke spec + regression gate =="
  cmake -B "$ROOT/build" -S "$ROOT" >/dev/null
  cmake --build "$ROOT/build" -j "$JOBS" --target mcmtool
  WORK="$ROOT/build/pipeline-smoke"
  rm -rf "$WORK"
  mkdir -p "$WORK"
  cd "$WORK"
  # Cold run: measures + calibrates, persists the calibration cache and
  # emits the BENCH report the baseline gate checks.
  "$ROOT"/build/tools/mcmtool run-scenario \
      "$ROOT"/scripts/scenario_smoke.json \
      --cache scenario_cache.json --report BENCH_scenario_smoke.json \
      >cold.log 2>&1 || { cat cold.log; echo "FAIL: cold run"; exit 1; }
  grep -q "^calibration: measured$" cold.log || {
    cat cold.log
    echo "FAIL: cold run did not measure its calibration"
    exit 1
  }
  # Warm run: the persisted cache must serve the calibration (the
  # observable contract behind pipeline.cache.hits), with identical
  # metrics in the report.
  "$ROOT"/build/tools/mcmtool run-scenario \
      "$ROOT"/scripts/scenario_smoke.json \
      --cache scenario_cache.json --report BENCH_scenario_warm.json \
      >warm.log 2>&1 || { cat warm.log; echo "FAIL: warm run"; exit 1; }
  grep -q "^calibration: cache hit$" warm.log || {
    cat warm.log
    echo "FAIL: warm run did not hit the calibration cache"
    exit 1
  }
  echo "-- bench-diff BENCH_scenario_smoke.json (baseline)"
  "$ROOT"/build/tools/mcmtool bench-diff \
      "$ROOT"/bench/baselines/pipeline/BENCH_scenario_smoke.json \
      BENCH_scenario_smoke.json
  echo "-- bench-diff cold vs warm (must be identical)"
  "$ROOT"/build/tools/mcmtool bench-diff \
      BENCH_scenario_smoke.json BENCH_scenario_warm.json --threshold 0
}

fault_suite() {
  echo "== fault: fault-injection suite, cold + sanitizers =="
  cmake -B "$ROOT/build" -S "$ROOT" >/dev/null
  cmake --build "$ROOT/build" -j "$JOBS" --target test_fault
  (cd "$ROOT/build" && ctest -L fault --output-on-failure -j "$JOBS")
  # Timeouts, retries and peer-gone wakeups cross threads under a lock —
  # rerun the same tests instrumented.
  cmake --preset sanitize -S "$ROOT"
  cmake --build "$ROOT/build-sanitize" -j "$JOBS" --target test_fault
  (cd "$ROOT/build-sanitize" && ctest -L fault --output-on-failure \
      -j "$JOBS")
}

service_suite() {
  echo "== service: mcmd replay + socket query + sanitized svc suite =="
  cmake -B "$ROOT/build" -S "$ROOT" >/dev/null
  cmake --build "$ROOT/build" -j "$JOBS" --target mcmd mcmtool
  WORK="$ROOT/build/service-smoke"
  rm -rf "$WORK"
  mkdir -p "$WORK"
  cd "$WORK"
  # Golden replay, twice: under the --deterministic tick clock even the
  # latency quantiles in stats replies byte-compare, so the whole reply
  # stream must match between runs (the golden request count stays under
  # the admission burst, so no sheds either).
  "$ROOT"/build/tools/mcmd --stdio --deterministic \
      <"$ROOT"/scripts/service_smoke.requests >replay_a.out \
      2>replay_a.log || { cat replay_a.log; echo "FAIL: replay A"; exit 1; }
  "$ROOT"/build/tools/mcmd --stdio --deterministic \
      <"$ROOT"/scripts/service_smoke.requests >replay_b.out \
      2>/dev/null || { echo "FAIL: replay B"; exit 1; }
  cmp replay_a.out replay_b.out || {
    echo "FAIL: golden replay replies differ between runs"
    exit 1
  }
  grep -q "served 7 requests" replay_a.log || {
    cat replay_a.log
    echo "FAIL: replay did not serve the full golden file"
    exit 1
  }
  # Socket transport: a cold query must be byte-identical to the local
  # run-scenario result document, and the second query must be answered
  # from the sharded cache (visible in the stats counters).
  SOCK="/tmp/mcm-ci-$$.sock"
  "$ROOT"/build/tools/mcmd --socket "$SOCK" 2>serve.log &
  MCMD_PID=$!
  for _ in $(seq 50); do [ -S "$SOCK" ] && break; sleep 0.1; done
  [ -S "$SOCK" ] || { cat serve.log; echo "FAIL: mcmd never bound"; exit 1; }
  status=0
  "$ROOT"/build/tools/mcmtool query --socket "$SOCK" \
      --spec "$ROOT"/scripts/scenario_smoke.json >query_cold.out \
      || status=1
  "$ROOT"/build/tools/mcmtool run-scenario \
      "$ROOT"/scripts/scenario_smoke.json --result-json \
      2>/dev/null >local.out || status=1
  cmp query_cold.out local.out || {
    echo "FAIL: socket query is not byte-identical to run-scenario"
    status=1
  }
  "$ROOT"/build/tools/mcmtool query --socket "$SOCK" \
      --spec "$ROOT"/scripts/scenario_smoke.json >query_warm.out \
      || status=1
  "$ROOT"/build/tools/mcmtool query --socket "$SOCK" --method stats \
      >stats.out || status=1
  grep -q '"svc.calibrations":1' stats.out || {
    echo "FAIL: expected exactly one calibration across both queries"
    status=1
  }
  grep -q '"pipeline.cache.hits":1' stats.out || {
    echo "FAIL: warm query did not hit the calibration cache"
    status=1
  }
  kill "$MCMD_PID" 2>/dev/null || true
  wait "$MCMD_PID" 2>/dev/null || true
  [ "$status" -eq 0 ] || exit 1
  # Concurrency claims (single-flight, shard locking, socket shutdown)
  # are only as good as their data races — rerun the suite instrumented.
  cmake --preset sanitize -S "$ROOT"
  cmake --build "$ROOT/build-sanitize" -j "$JOBS" --target test_svc
  (cd "$ROOT/build-sanitize" && ctest -L svc --output-on-failure \
      -j "$JOBS")
}

chaos_suite() {
  echo "== chaos: malformed-frame replay + seeded chaos suite =="
  cmake -B "$ROOT/build" -S "$ROOT" >/dev/null
  cmake --build "$ROOT/build" -j "$JOBS" --target mcmd test_chaos
  WORK="$ROOT/build/chaos-smoke"
  rm -rf "$WORK"
  mkdir -p "$WORK"
  cd "$WORK"
  # Malformed-frame golden replay, twice: typed error replies are part of
  # the wire contract, so their bytes must be identical between runs.
  "$ROOT"/build/tools/mcmd --stdio --deterministic \
      <"$ROOT"/scripts/chaos_smoke.requests >chaos_a.out \
      2>chaos_a.log || { cat chaos_a.log; echo "FAIL: chaos replay A"; \
      exit 1; }
  "$ROOT"/build/tools/mcmd --stdio --deterministic \
      <"$ROOT"/scripts/chaos_smoke.requests >chaos_b.out \
      2>/dev/null || { echo "FAIL: chaos replay B"; exit 1; }
  cmp chaos_a.out chaos_b.out || {
    echo "FAIL: chaos replay replies differ between runs"
    exit 1
  }
  # The corpus serves its parseable frames, then stops at the framing
  # error (after one final typed reply — there is no resync point).
  grep -q "served 5 requests" chaos_a.log || {
    cat chaos_a.log
    echo "FAIL: chaos replay did not serve the parseable frames"
    exit 1
  }
  grep -q '"code":"bad-request"' chaos_a.out || {
    echo "FAIL: chaos replay produced no typed bad-request reply"
    exit 1
  }
  # The seeded chaos suite, twice: the schedules are deterministic, so a
  # pass followed by a failure is a flake by definition — and a bug.
  (cd "$ROOT/build" && ctest -L chaos --output-on-failure -j "$JOBS")
  (cd "$ROOT/build" && ctest -L chaos --output-on-failure -j "$JOBS")
  # Torn frames and cut connections cross threads — rerun instrumented.
  cmake --preset sanitize -S "$ROOT"
  cmake --build "$ROOT/build-sanitize" -j "$JOBS" --target test_chaos
  (cd "$ROOT/build-sanitize" && ctest -L chaos --output-on-failure \
      -j "$JOBS")
}

batch_suite() {
  echo "== batch: batched serving vs serial + shm transport + bugfixes =="
  cmake -B "$ROOT/build" -S "$ROOT" >/dev/null
  cmake --build "$ROOT/build" -j "$JOBS" --target mcmd mcmtool test_svc \
      test_chaos
  WORK="$ROOT/build/batch-smoke"
  rm -rf "$WORK"
  mkdir -p "$WORK"
  cd "$WORK"
  # N serial queries against a fresh server: the reference bytes, and
  # exactly one calibration across them (sharded cache).
  SOCK_A="/tmp/mcm-batch-a-$$.sock"
  "$ROOT"/build/tools/mcmd --socket "$SOCK_A" 2>serve_a.log &
  PID_A=$!
  for _ in $(seq 50); do [ -S "$SOCK_A" ] && break; sleep 0.1; done
  [ -S "$SOCK_A" ] || { cat serve_a.log; echo "FAIL: mcmd A never bound"; \
      exit 1; }
  status=0
  : >serial.out
  for i in 1 2 3; do
    "$ROOT"/build/tools/mcmtool query --socket "$SOCK_A" \
        --spec "$ROOT"/scripts/scenario_smoke.json --id "q$i" \
        >>serial.out || status=1
  done
  "$ROOT"/build/tools/mcmtool query --socket "$SOCK_A" --method stats \
      >stats_serial.json || status=1
  grep -q '"svc.calibrations":1' stats_serial.json || {
    echo "FAIL: serial reference ran more than one calibration"
    status=1
  }
  kill "$PID_A" 2>/dev/null || true
  wait "$PID_A" 2>/dev/null || true
  # The same three predicts as one batch envelope against a fresh server:
  # per-entry replies must be byte-identical to the serial stream, the
  # group must ride one calibration, and the batch counters must show
  # one request / three entries / one group.
  SOCK_B="/tmp/mcm-batch-b-$$.sock"
  "$ROOT"/build/tools/mcmd --socket "$SOCK_B" 2>serve_b.log &
  PID_B=$!
  for _ in $(seq 50); do [ -S "$SOCK_B" ] && break; sleep 0.1; done
  [ -S "$SOCK_B" ] || { cat serve_b.log; echo "FAIL: mcmd B never bound"; \
      exit 1; }
  "$ROOT"/build/tools/mcmtool query --socket "$SOCK_B" \
      --spec "$ROOT"/scripts/scenario_smoke.json --id q --batch 3 \
      >batch.out || status=1
  "$ROOT"/build/tools/mcmtool query --socket "$SOCK_B" --method stats \
      >stats_batch.json || status=1
  for key in '"svc.calibrations":1' '"svc.batch.requests":1' \
      '"svc.batch.entries":3' '"svc.batch.groups":1' \
      '"svc.batch.entry_errors":0'; do
    grep -q "$key" stats_batch.json || {
      echo "FAIL: batch server stats are missing $key"
      status=1
    }
  done
  kill "$PID_B" 2>/dev/null || true
  wait "$PID_B" 2>/dev/null || true
  cmp serial.out batch.out || {
    echo "FAIL: batched replies are not byte-identical to serial"
    status=1
  }
  # The same batch over the shm transport (in-process mcm::net mailboxes)
  # must produce the same bytes as the socket transport.
  "$ROOT"/build/tools/mcmtool query --transport shm \
      --spec "$ROOT"/scripts/scenario_smoke.json --id q --batch 3 \
      >shm.out || status=1
  cmp batch.out shm.out || {
    echo "FAIL: shm batch replies differ from the socket transport"
    status=1
  }
  [ "$status" -eq 0 ] || exit 1
  # Golden batch replay (valid batches, a batch with malformed entries,
  # malformed batch frames): byte-identical between runs, and the --shm
  # bridge must reproduce the --stdio bytes exactly.
  "$ROOT"/build/tools/mcmd --stdio --deterministic \
      <"$ROOT"/scripts/batch_smoke.requests >golden_a.out \
      2>golden_a.log || { cat golden_a.log; echo "FAIL: batch replay A"; \
      exit 1; }
  "$ROOT"/build/tools/mcmd --stdio --deterministic \
      <"$ROOT"/scripts/batch_smoke.requests >golden_b.out \
      2>/dev/null || { echo "FAIL: batch replay B"; exit 1; }
  cmp golden_a.out golden_b.out || {
    echo "FAIL: batch golden replay replies differ between runs"
    exit 1
  }
  "$ROOT"/build/tools/mcmd --shm --deterministic \
      <"$ROOT"/scripts/batch_smoke.requests >golden_shm.out \
      2>/dev/null || { echo "FAIL: batch replay over shm"; exit 1; }
  cmp golden_a.out golden_shm.out || {
    echo "FAIL: shm golden replay differs from the stdio transcript"
    exit 1
  }
  grep -q '"replies"' golden_a.out || {
    echo "FAIL: golden replay produced no batch reply envelope"
    exit 1
  }
  for code in '"code":"invalid-spec"' '"code":"unsupported-version"' \
      '"code":"bad-request"'; do
    grep -q "$code" golden_a.out || {
      echo "FAIL: golden replay is missing a $code per-entry reply"
      exit 1
    }
  done
  # The three service-path bugfix regressions, by name: leader-failure
  # propagation, validate-before-charge admission, and the retry-pause /
  # attempt-budget overflow clamps.
  (cd "$ROOT/build" && ctest -R \
      'SingleFlight\.LeaderFailurePropagatesToEveryParkedFollower|Admission\.MalformedFloodsDoNotBurnTokensFromValidTraffic|ChaosClient\.BackoffPauseOverflowIsClampedSoHugeRetryBudgetsReturn|ChaosClient\.AttemptBudgetOverflowIsClampedBeforeTheIntCast' \
      --output-on-failure)
  # Batch grouping, the shm transport and the single-flight failure path
  # all cross threads — rerun the whole svc suite instrumented.
  cmake --preset sanitize -S "$ROOT"
  cmake --build "$ROOT/build-sanitize" -j "$JOBS" --target test_svc
  (cd "$ROOT/build-sanitize" && ctest -L svc --output-on-failure \
      -j "$JOBS")
}

perf_gate() {
  echo "== perf: engine hot-path bench gate + sanitized equivalence =="
  cmake -B "$ROOT/build" -S "$ROOT" >/dev/null
  cmake --build "$ROOT/build" -j "$JOBS" --target bench_engine_hotpath \
      mcmtool
  WORK="$ROOT/build/perf-smoke"
  rm -rf "$WORK"
  mkdir -p "$WORK"
  cd "$WORK"
  echo "-- bench_engine_hotpath (smoke)"
  MCM_BENCH_SMOKE=1 "$ROOT"/build/bench/bench_engine_hotpath \
      >hotpath.log 2>&1 || {
    cat hotpath.log
    echo "FAIL: bench_engine_hotpath"
    exit 1
  }
  # The report must carry the solve-avoidance counters and the bitwise
  # equivalence flags; the deterministic metrics gate against the
  # checked-in baseline.
  for key in '"solves_avoided"' '"work_ratio"' '"eq_completions"'; do
    grep -q "$key" BENCH_engine_hotpath.json || {
      echo "FAIL: hot-path report is missing $key"
      exit 1
    }
  done
  echo "-- bench-diff BENCH_engine_hotpath.json"
  "$ROOT"/build/tools/mcmtool bench-diff \
      "$ROOT"/bench/baselines/BENCH_engine_hotpath.json \
      BENCH_engine_hotpath.json
  # The incremental solver's exactness claims, instrumented: the sanitize
  # build turns on the incremental-vs-full cross-check (see sim/engine.hpp,
  # MCM_CHECK_INCREMENTAL), so every Nth refresh is shadow-solved inline.
  cmake --preset sanitize -S "$ROOT"
  cmake --build "$ROOT/build-sanitize" -j "$JOBS" --target test_sim
  (cd "$ROOT/build-sanitize" && ctest -L sim --output-on-failure \
      -j "$JOBS")
}

obs_suite() {
  echo "== obs: traced query + trace-merge + log schema + quantiles =="
  cmake -B "$ROOT/build" -S "$ROOT" >/dev/null
  cmake --build "$ROOT/build" -j "$JOBS" --target mcmd mcmtool
  WORK="$ROOT/build/obs-smoke"
  rm -rf "$WORK"
  mkdir -p "$WORK"
  cd "$WORK"
  # Fully instrumented server: deterministic tick clock, Chrome trace,
  # debug-level JSONL log.
  SOCK="/tmp/mcm-obs-$$.sock"
  "$ROOT"/build/tools/mcmd --socket "$SOCK" --deterministic \
      --trace server_trace.json --log-file server_log.jsonl \
      --log-level debug 2>serve.log &
  MCMD_PID=$!
  for _ in $(seq 50); do [ -S "$SOCK" ] && break; sleep 0.1; done
  [ -S "$SOCK" ] || { cat serve.log; echo "FAIL: mcmd never bound"; exit 1; }
  status=0
  # Traced query: the client generates the trace identity (seeded, so the
  # ids are reproducible) and records its own attempt spans.
  "$ROOT"/build/tools/mcmtool query --socket "$SOCK" \
      --spec "$ROOT"/scripts/scenario_smoke.json \
      --trace client_trace.json --trace-seed 42 >query.out || status=1
  "$ROOT"/build/tools/mcmtool query --socket "$SOCK" --method stats \
      >stats.json || status=1
  "$ROOT"/build/tools/mcmtool query --socket "$SOCK" --method stats \
      --format prometheus >stats.prom || status=1
  # Graceful stop: the server writes its trace file during shutdown.
  kill -TERM "$MCMD_PID" 2>/dev/null || status=1
  wait "$MCMD_PID" 2>/dev/null || true
  [ -f server_trace.json ] || {
    cat serve.log
    echo "FAIL: server wrote no trace file on shutdown"
    exit 1
  }
  # Client and server traces must share the query's trace id — that is
  # the whole point of propagation.
  TRACE_ID=$(grep -o '"trace_id":[0-9]*' client_trace.json | head -1)
  [ -n "$TRACE_ID" ] || {
    echo "FAIL: client trace carries no trace_id tag"
    status=1
  }
  grep -q "$TRACE_ID" server_trace.json || {
    echo "FAIL: server trace does not contain the client's $TRACE_ID"
    status=1
  }
  # trace-merge joins the two timelines; it is deterministic, so merging
  # twice must produce identical bytes.
  "$ROOT"/build/tools/mcmtool trace-merge client_trace.json \
      server_trace.json --out merged_a.json || status=1
  "$ROOT"/build/tools/mcmtool trace-merge client_trace.json \
      server_trace.json --out merged_b.json || status=1
  cmp merged_a.json merged_b.json || {
    echo "FAIL: trace-merge is not deterministic"
    status=1
  }
  grep -q "$TRACE_ID" merged_a.json || {
    echo "FAIL: merged trace lost the trace id"
    status=1
  }
  # JSONL log schema: every line leads with ts_us, level, event.
  for key in '"ts_us":' '"level":"' '"event":"'; do
    grep -q "$key" server_log.jsonl || {
      echo "FAIL: structured log is missing $key"
      status=1
    }
  done
  # The latency instruments must surface quantiles in both stats formats.
  grep -q '"p99_us":' stats.json || {
    echo "FAIL: JSON stats carry no latency quantiles"
    status=1
  }
  grep -q 'mcm_svc_latency_total_bucket' stats.prom || {
    echo "FAIL: Prometheus stats carry no latency histogram"
    status=1
  }
  [ "$status" -eq 0 ] || exit 1
  # Histogram buckets, trace sinks and the log mutex are all shared by
  # concurrent workers — run the obs suite instrumented.
  cmake --preset sanitize -S "$ROOT"
  cmake --build "$ROOT/build-sanitize" -j "$JOBS" --target test_obs
  (cd "$ROOT/build-sanitize" && ctest -L obs --output-on-failure \
      -j "$JOBS")
}

case "$STAGE" in
  tier1) tier1 ;;
  sanitize) sanitize ;;
  bench) bench_smoke ;;
  pipeline) pipeline_smoke ;;
  fault) fault_suite ;;
  service) service_suite ;;
  batch) batch_suite ;;
  chaos) chaos_suite ;;
  perf) perf_gate ;;
  obs) obs_suite ;;
  all)
    tier1
    sanitize
    bench_smoke
    pipeline_smoke
    fault_suite
    service_suite
    batch_suite
    chaos_suite
    perf_gate
    obs_suite
    ;;
  *)
    echo "usage: $0 [tier1|sanitize|bench|pipeline|fault|service|batch|chaos|perf|obs|all]" >&2
    exit 2
    ;;
esac
echo "ci.sh: $STAGE OK"
