#!/bin/sh
# CI pipeline, runnable locally: tier-1 build + tests, the sanitizer
# subset, the benchmark smoke suite, and the bench-diff regression gate
# against the checked-in baseline reports.
#
#   scripts/ci.sh            run everything
#   scripts/ci.sh tier1      build + full ctest only
#   scripts/ci.sh sanitize   ASan+UBSan build + `ctest -L sanitize`
#   scripts/ci.sh bench      MCM_BENCH_SMOKE=1 suite + baseline diffs
set -eu

ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
JOBS=$(nproc 2>/dev/null || echo 4)
STAGE=${1:-all}

tier1() {
  echo "== tier1: build + ctest =="
  cmake -B "$ROOT/build" -S "$ROOT"
  cmake --build "$ROOT/build" -j "$JOBS"
  (cd "$ROOT/build" && ctest --output-on-failure -j "$JOBS")
}

sanitize() {
  echo "== sanitize: ASan+UBSan subset =="
  cmake --preset sanitize -S "$ROOT"
  cmake --build "$ROOT/build-sanitize" -j "$JOBS"
  (cd "$ROOT/build-sanitize" && ctest -L sanitize --output-on-failure \
      -j "$JOBS")
}

bench_smoke() {
  echo "== bench: smoke suite + regression gate =="
  # Reuse the tier-1 build; make sure the bench binaries exist.
  cmake -B "$ROOT/build" -S "$ROOT" >/dev/null
  cmake --build "$ROOT/build" -j "$JOBS"
  WORK="$ROOT/build/bench-smoke"
  mkdir -p "$WORK"
  cd "$WORK"
  for bin in "$ROOT"/build/bench/bench_*; do
    [ -x "$bin" ] || continue
    name=$(basename "$bin")
    echo "-- $name (smoke)"
    MCM_BENCH_SMOKE=1 "$bin" >"$name.log" 2>&1 || {
      cat "$name.log"
      echo "FAIL: $name"
      exit 1
    }
  done
  # Gate every report that has a checked-in baseline; complain about
  # baselines whose benchmark vanished.
  status=0
  for baseline in "$ROOT"/bench/baselines/BENCH_*.json; do
    [ -e "$baseline" ] || {
      echo "note: no baselines in bench/baselines; skipping diff gate"
      break
    }
    report=$(basename "$baseline")
    if [ ! -f "$WORK/$report" ]; then
      echo "FAIL: baseline $report has no candidate report"
      status=1
      continue
    fi
    echo "-- bench-diff $report"
    "$ROOT"/build/tools/mcmtool bench-diff "$baseline" "$WORK/$report" \
      || status=1
  done
  return $status
}

case "$STAGE" in
  tier1) tier1 ;;
  sanitize) sanitize ;;
  bench) bench_smoke ;;
  all)
    tier1
    sanitize
    bench_smoke
    ;;
  *)
    echo "usage: $0 [tier1|sanitize|bench|all]" >&2
    exit 2
    ;;
esac
echo "ci.sh: $STAGE OK"
